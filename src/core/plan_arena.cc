// srb-lint: arena — SRB009: plan bytes come from PlanArena here.
// srb-lint: modeled — SRB010: locking goes through common/sync.hh.
/** @file PlanArena / TiledPlans implementation; see plan_arena.hh. */

#include "core/plan_arena.hh"

#include <algorithm>

#include "common/logging.hh"

namespace srbenes
{

PlanArena::PlanArena(std::size_t tile_bytes)
    : tile_bytes_(tile_bytes),
      tile_words_(std::max<std::size_t>(1, tile_bytes / sizeof(Word)))
{
}

Word *
PlanArena::alloc(std::size_t words)
{
    if (words == 0)
        fatal("PlanArena::alloc: zero-word block requested");
    sync::MutexLock lock(mu_);
    return allocLocked(words);
}

Word *
PlanArena::allocLocked(std::size_t words)
{
    auto it = free_.find(words);
    if (it != free_.end() && !it->second.empty())
    {
        Word *block = it->second.back();
        it->second.pop_back();
        live_words_ += words;
        ++live_blocks_;
        publishGaugesLocked();
        return block;
    }

    if (tiles_.empty() || tiles_.back().used + words > tiles_.back().cap)
    {
        Tile tile;
        tile.cap = std::max(tile_words_, words);
        // srb-lint: allow(SRB009) the tile backing store itself is the
        // one place arena bytes may come from the heap.
        tile.words = std::make_unique<Word[]>(tile.cap);
        capacity_words_ += tile.cap;
        tiles_.push_back(std::move(tile));
    }

    Tile &open = tiles_.back();
    Word *block = open.words.get() + open.used;
    open.used += words;
    live_words_ += words;
    ++live_blocks_;
    publishGaugesLocked();
    return block;
}

void
PlanArena::release(Word *block, std::size_t words)
{
    if (block == nullptr || words == 0)
        fatal("PlanArena::release: null block or zero words");
    sync::MutexLock lock(mu_);
    free_[words].push_back(block);
    live_words_ -= words;
    --live_blocks_;
    publishGaugesLocked();
}

void
PlanArena::publishGaugesLocked()
{
    if (g_resident_ != nullptr)
        g_resident_->set(
            static_cast<std::int64_t>(live_words_ * sizeof(Word)));
    if (g_capacity_ != nullptr)
        g_capacity_->set(
            static_cast<std::int64_t>(capacity_words_ * sizeof(Word)));
}

PlanArenaStats
PlanArena::stats() const
{
    sync::MutexLock lock(mu_);
    PlanArenaStats s;
    s.resident_bytes = live_words_ * sizeof(Word);
    s.capacity_bytes = capacity_words_ * sizeof(Word);
    s.tiles = tiles_.size();
    s.live_blocks = live_blocks_;
    s.occupancy = capacity_words_ == 0
                      ? 0.0
                      : static_cast<double>(live_words_) /
                            static_cast<double>(capacity_words_);
    return s;
}

std::size_t
PlanArena::residentBytes() const
{
    sync::MutexLock lock(mu_);
    return live_words_ * sizeof(Word);
}

std::size_t
PlanArena::capacityBytes() const
{
    sync::MutexLock lock(mu_);
    return capacity_words_ * sizeof(Word);
}

void
PlanArena::attachGauges(obs::Gauge *resident, obs::Gauge *capacity)
{
    sync::MutexLock lock(mu_);
    g_resident_ = resident;
    g_capacity_ = capacity;
    publishGaugesLocked();
}

TiledPlans::~TiledPlans() { releaseBlocks(); }

TiledPlans::TiledPlans(TiledPlans &&other) noexcept
    : n_(other.n_), stages_(other.stages_),
      words_per_stage_(other.words_per_stage_), tile_cap_(other.tile_cap_),
      arena_(std::move(other.arena_)),
      tile_base_(std::move(other.tile_base_)),
      success_(std::move(other.success_))
{
    other.n_ = 0;
    other.stages_ = 0;
    other.words_per_stage_ = 0;
    other.tile_cap_ = 0;
    other.tile_base_.clear();
    other.success_.clear();
}

TiledPlans &
TiledPlans::operator=(TiledPlans &&other) noexcept
{
    if (this != &other)
    {
        releaseBlocks();
        n_ = other.n_;
        stages_ = other.stages_;
        words_per_stage_ = other.words_per_stage_;
        tile_cap_ = other.tile_cap_;
        arena_ = std::move(other.arena_);
        tile_base_ = std::move(other.tile_base_);
        success_ = std::move(other.success_);
        other.n_ = 0;
        other.stages_ = 0;
        other.words_per_stage_ = 0;
        other.tile_cap_ = 0;
        other.tile_base_.clear();
        other.success_.clear();
    }
    return *this;
}

void
TiledPlans::releaseBlocks()
{
    if (!arena_ || tile_base_.empty())
    {
        tile_base_.clear();
        return;
    }
    const std::size_t block_words =
        static_cast<std::size_t>(stages_) * tile_cap_ * words_per_stage_;
    for (Word *base : tile_base_)
        arena_->release(base, block_words);
    tile_base_.clear();
}

PackedPlanBits
TiledPlans::bits(std::size_t i) const
{
    if (i >= success_.size())
        fatal("TiledPlans::bits: plan %zu out of range (size %zu)", i,
              success_.size());
    const std::size_t tile = i / tile_cap_;
    const std::size_t off = i % tile_cap_;
    PackedPlanBits b;
    b.n = n_;
    b.words_per_stage = words_per_stage_;
    b.stage_stride = tile_cap_ * words_per_stage_;
    b.words = tile_base_[tile] + off * words_per_stage_;
    return b;
}

PackedStates
TiledPlans::packedStates(std::size_t i) const
{
    const PackedPlanBits b = bits(i);
    PackedStates out;
    out.n = n_;
    out.words_per_stage = words_per_stage_;
    out.words.resize(static_cast<std::size_t>(stages_) * words_per_stage_);
    for (unsigned s = 0; s < stages_; ++s)
        for (Word w = 0; w < words_per_stage_; ++w)
            out.words[s * words_per_stage_ + w] =
                b.words[Word{s} * b.stage_stride + w];
    return out;
}

PlanArenaStats
TiledPlans::arenaStats() const
{
    return arena_ ? arena_->stats() : PlanArenaStats{};
}

std::size_t
TiledPlans::planBytes() const noexcept
{
    return tile_base_.size() * static_cast<std::size_t>(stages_) *
           tile_cap_ * words_per_stage_ * sizeof(Word);
}

} // namespace srbenes
