#include "core/render.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace srbenes
{

std::string
toBinary(Word v, unsigned n)
{
    std::string s(n, '0');
    for (unsigned b = 0; b < n; ++b)
        if (bit(v, b))
            s[n - 1 - b] = '1';
    return s;
}

std::string
renderRoute(const BenesTopology &topo, const RouteTrace &trace,
            const RouteResult &result)
{
    const unsigned n = topo.n();
    const unsigned stages = topo.numStages();
    if (trace.tags_at_stage.size() != stages + 1u)
        panic("trace has %zu snapshots, expected %u",
              trace.tags_at_stage.size(), stages + 1);

    std::ostringstream os;
    os << "B(" << n << "), N = " << topo.numLines() << ", "
       << stages << " stages\n";

    std::vector<std::string> headers;
    headers.push_back("line");
    for (unsigned s = 0; s < stages; ++s)
        headers.push_back("s" + std::to_string(s) + "(b" +
                          std::to_string(topo.controlBit(s)) + ")");
    headers.push_back("out");

    TextTable table(std::move(headers));
    for (Word line = 0; line < topo.numLines(); ++line) {
        table.newRow();
        table.addCell(line);
        for (unsigned s = 0; s <= stages; ++s)
            table.addCell(toBinary(trace.tags_at_stage[s][line], n));
    }
    table.print(os);

    os << "switch states (stage: states top to bottom):\n";
    for (unsigned s = 0; s < stages; ++s) {
        os << "  stage " << s << ":";
        for (Word i = 0; i < topo.switchesPerStage(); ++i)
            os << " " << static_cast<int>(result.states[s][i]);
        os << "\n";
    }

    if (result.success) {
        os << "verdict: permutation realized\n";
    } else {
        os << "verdict: NOT realized; misrouted outputs:";
        for (Word j : result.misrouted_outputs)
            os << " " << j << "(got " << result.output_tags[j] << ")";
        os << "\n";
    }
    return os.str();
}

std::string
renderStates(const BenesTopology &topo, const SwitchStates &states)
{
    if (states.size() != topo.numStages())
        panic("state array has %zu stages, expected %u",
              states.size(), topo.numStages());

    std::ostringstream os;
    os << "switch  stages 0.." << topo.numStages() - 1 << "\n";
    for (Word i = 0; i < topo.switchesPerStage(); ++i) {
        os << (i < 10 ? " " : "") << i << "      ";
        for (unsigned s = 0; s < topo.numStages(); ++s)
            os << (states[s][i] ? 'X' : '=');
        os << "\n";
    }
    return os.str();
}

} // namespace srbenes
