#include "core/self_routing.hh"

#include "common/logging.hh"

namespace srbenes
{

namespace
{

/** One in-flight signal: its destination tag and where it entered. */
struct Signal
{
    Word tag;
    Word origin;
};

/**
 * Reusable per-thread signal arenas; capacity persists across calls
 * so the steady state allocates nothing.
 */
thread_local std::vector<Signal> t_cur;
thread_local std::vector<Signal> t_next;

} // namespace

SelfRoutingBenes::SelfRoutingBenes(unsigned n)
    : topo_(n)
{
}

RouteResult
SelfRoutingBenes::route(const Permutation &d, RoutingMode mode,
                        RouteTrace *trace) const
{
    RouteResult res;
    runInto(d, nullptr, mode, trace, res);
    return res;
}

void
SelfRoutingBenes::routeInto(const Permutation &d, RouteResult &res,
                            RoutingMode mode, RouteTrace *trace) const
{
    runInto(d, nullptr, mode, trace, res);
}

RouteResult
SelfRoutingBenes::routeWithStates(const Permutation &d,
                                  const SwitchStates &states,
                                  RouteTrace *trace) const
{
    if (states.size() != topo_.numStages())
        fatal("state array has %zu stages, network has %u",
              states.size(), topo_.numStages());
    RouteResult res;
    runInto(d, &states, RoutingMode::SelfRouting, trace, res);
    return res;
}

std::optional<std::vector<Word>>
SelfRoutingBenes::permutePayloads(const Permutation &d,
                                  const std::vector<Word> &data,
                                  RoutingMode mode) const
{
    if (data.size() != numLines())
        fatal("payload vector size %zu != N = %llu", data.size(),
              static_cast<unsigned long long>(numLines()));

    thread_local RouteResult res;
    routeInto(d, res, mode);
    if (!res.success)
        return std::nullopt;

    std::vector<Word> out(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        out[res.realized_dest[i]] = data[i];
    return out;
}

void
SelfRoutingBenes::runInto(const Permutation &d,
                          const SwitchStates *forced, RoutingMode mode,
                          RouteTrace *trace, RouteResult &res) const
{
    const Word size = numLines();
    if (d.size() != size)
        fatal("permutation size %zu does not match network N = %llu",
              d.size(), static_cast<unsigned long long>(size));

    std::vector<Signal> &cur = t_cur;
    std::vector<Signal> &next = t_next;
    cur.resize(size);
    next.resize(size);
    for (Word i = 0; i < size; ++i)
        cur[i] = Signal{d[i], i};

    const unsigned stages = topo_.numStages();
    // Reshape in place: every element below is overwritten.
    res.states.resize(stages);
    for (auto &stage : res.states)
        stage.resize(topo_.switchesPerStage());
    res.gate_delay = stages;
    res.misrouted_outputs.clear();

    auto snapshot = [&]() {
        if (!trace)
            return;
        std::vector<Word> tags(size);
        for (Word j = 0; j < size; ++j)
            tags[j] = cur[j].tag;
        trace->tags_at_stage.push_back(std::move(tags));
    };

    for (unsigned s = 0; s < stages; ++s) {
        snapshot();

        // Pass through the switches of stage s.
        const unsigned b = topo_.controlBit(s);
        for (Word i = 0; i < topo_.switchesPerStage(); ++i) {
            std::uint8_t state;
            if (forced) {
                state = (*forced)[s][i];
            } else if (mode == RoutingMode::OmegaBit &&
                       s + 1 < topo_.n()) {
                state = 0; // the "omega" bit forces stages 0..n-2
            } else {
                state = static_cast<std::uint8_t>(
                    bit(cur[2 * i].tag, b));
            }
            res.states[s][i] = state;
            if (state) {
                std::swap(cur[2 * i], cur[2 * i + 1]);
            }
        }

        // Apply the fixed wiring into the next stage.
        if (s + 1 < stages) {
            for (Word line = 0; line < size; ++line)
                next[topo_.wireToNext(s, line)] = cur[line];
            cur.swap(next);
        }
    }
    snapshot();

    res.output_tags.resize(size);
    res.realized_dest.resize(size);
    res.success = true;
    for (Word j = 0; j < size; ++j) {
        res.output_tags[j] = cur[j].tag;
        res.realized_dest[cur[j].origin] = j;
        if (cur[j].tag != j) {
            res.success = false;
            res.misrouted_outputs.push_back(j);
        }
    }
}

} // namespace srbenes
