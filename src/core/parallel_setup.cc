#include "core/parallel_setup.hh"

#include "common/logging.hh"

namespace srbenes
{

namespace
{

/** splitmix64 finalizer for the seeded loop-color draws. */
std::uint64_t
mixLoopKey(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

SwitchStates
parallelSetup(const BenesTopology &topo, const Permutation &d,
              ParallelSetupStats *stats, std::uint64_t seed)
{
    const unsigned n = topo.n();
    const Word size = topo.numLines();
    if (d.size() != size)
        fatal("permutation size %zu does not match network N = %llu",
              d.size(), static_cast<unsigned long long>(size));

    SwitchStates states = topo.makeStates();
    CicMachine cic(size);

    if (n == 1) {
        states[0][0] = static_cast<std::uint8_t>(d[0] == 1);
        if (stats)
            *stats = ParallelSetupStats{0, 1};
        return states;
    }

    // Flat data-parallel state: every recursion level's subproblems
    // tile the PE array contiguously. cur[x] is the LOCAL
    // destination of the signal at flat position x within its
    // block.
    std::vector<Word> cur(d.dest());

    for (unsigned level = 0; level + 1 < n; ++level) {
        const Word block = size >> level; // current subproblem size
        const Word base_mask = ~(block - 1);

        auto base_of = [base_mask](Word x) { return x & base_mask; };

        // dinv (local) scattered to the output's flat slot.
        std::vector<Word> local(size), dest(size);
        for (Word x = 0; x < size; ++x) {
            local[x] = x & (block - 1);
            dest[x] = base_of(x) + cur[x];
        }
        cic.localStep();
        std::vector<Word> dinv(local);
        cic.scatter(dest, std::vector<bool>(size, true), dinv);

        // succ(x) = base + dinv[base + (cur[x^1] xor 1)]: the
        // color-preserving double hop along the constraint cycle.
        std::vector<Word> partner_dest(size);
        for (Word x = 0; x < size; ++x)
            partner_dest[x] = x ^ 1;
        std::vector<Word> t(cur);
        cic.gather(partner_dest, t); // t[x] = cur[x^1]
        std::vector<Word> from(size);
        for (Word x = 0; x < size; ++x)
            from[x] = base_of(x) + (t[x] ^ 1);
        cic.localStep();
        std::vector<Word> succ(dinv);
        cic.gather(from, succ); // succ[x] = dinv at sibling output
        for (Word x = 0; x < size; ++x)
            succ[x] += base_of(x);
        cic.localStep();

        // Orbit minima by pointer jumping; orbit length <= block/2.
        std::vector<Word> minima(size);
        for (Word x = 0; x < size; ++x)
            minima[x] = x;
        cic.localStep();
        for (Word reach = 1; reach < block / 2; reach *= 2) {
            std::vector<Word> m2(minima), s2(succ);
            cic.gather(succ, m2); // m2[x] = minima[succ[x]]
            cic.gather(succ, s2); // s2[x] = succ[succ[x]]
            for (Word x = 0; x < size; ++x)
                minima[x] = std::min(minima[x], m2[x]);
            cic.localStep();
            succ.swap(s2);
        }

        // Color: exactly one of each partner pair goes up. The
        // partner's orbit minimum arrives over the exchange link.
        // The seeded flip keys on the loop-invariant
        // min(own, partner) orbit minimum, so a constraint loop
        // flips wholesale and the coloring stays valid.
        std::vector<Word> partner_min(minima);
        cic.gather(partner_dest, partner_min);
        std::vector<Word> up(size);
        for (Word x = 0; x < size; ++x) {
            Word color = minima[x] > partner_min[x];
            // Top bit: bit 0 of the finalizer is biased over these
            // small structured keys (see waksman.cc seededColor).
            if (seed != 0)
                color ^= mixLoopKey(
                             seed ^ (std::uint64_t{level} << 48) ^
                             std::min(minima[x], partner_min[x])) >>
                         63;
            up[x] = color;
        }
        cic.localStep();

        // Opening-stage states (stage = level).
        for (Word x = 0; x < size; x += 2)
            states[level][x >> 1] = static_cast<std::uint8_t>(up[x]);
        cic.localStep();

        // Closing-stage states (stage = 2n-2-level): output 2j of a
        // block comes from the upper subnetwork iff its feeding
        // input went up.
        std::vector<Word> up_at_output(up);
        std::vector<Word> dinv_flat(size);
        for (Word x = 0; x < size; ++x)
            dinv_flat[x] = base_of(x) + dinv[x];
        cic.localStep();
        cic.gather(dinv_flat, up_at_output);
        const unsigned closing = 2 * n - 2 - level;
        for (Word y = 0; y < size; y += 2)
            states[closing][y >> 1] =
                static_cast<std::uint8_t>(up_at_output[y]);
        cic.localStep();

        // Build the next level: signal x moves to the slot of its
        // half-size subproblem, carrying cur[x] >> 1.
        std::vector<Word> newpos(size), halved(size);
        for (Word x = 0; x < size; ++x) {
            const Word p = x & (block - 1);
            newpos[x] =
                base_of(x) + up[x] * (block / 2) + (p >> 1);
            halved[x] = cur[x] >> 1;
        }
        cic.localStep();
        cic.scatter(newpos, std::vector<bool>(size, true), halved);
        cur.swap(halved);
    }

    // Base level: blocks of 2 are the middle-stage switches.
    for (Word x = 0; x < size; x += 2)
        states[n - 1][x >> 1] =
            static_cast<std::uint8_t>(cur[x] == 1);
    cic.localStep();

    if (stats)
        *stats =
            ParallelSetupStats{cic.unitRoutes(), cic.computeSteps()};
    return states;
}

} // namespace srbenes
