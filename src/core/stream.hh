// srb-lint: modeled — SRB010: concurrency here goes through the
// common/sync.hh shim and is exercised by the srb_model suite.
/**
 * @file
 * Streaming throughput engine: sustained routing of many independent
 * requests, the software analogue of Section IV's observation that a
 * registered B(n) accepts a new N-vector every clock.
 *
 * Shape of the machine:
 *
 *   producers ──SPSC──▶ K worker threads ──SPSC──▶ producers
 *
 *  - Each (producer, worker) pair owns one lock-free single-producer
 *    single-consumer ring for requests and one for results, so the
 *    aggregate is a multi-producer pipeline with no shared queue and
 *    no lock on the hot path.
 *  - A request is dispatched to the worker chosen by its permutation
 *    hash, so a recurring pattern always lands on the same worker and
 *    its THREAD-LOCAL plan cache: a hit costs a probe of a small
 *    open-addressed table — no lock, no reference-count traffic.
 *    When the affine worker's ring is full the request spills to the
 *    next worker instead of shedding immediately: the spill target
 *    misses locally, pulls the plan from the shared tier (a
 *    cross-worker shared hit), and load balances the burst.
 *  - Local misses fall through to the Router's sharded read-mostly
 *    tier (shared across workers), and only a genuinely new pattern
 *    pays for planning.
 *  - For small fabrics (n <= StreamOptions::inline_max_n) a ring
 *    round-trip costs more than the route itself, so trySubmit()
 *    executes the request INLINE on the producer thread — same plan
 *    tiers (a producer-local table over the shared Router tier),
 *    same deadline, shed and tier-stamping semantics, with results
 *    delivered through the normal poll interface.
 *  - Execution is one contiguous payload gather through the
 *    runtime-dispatched SIMD kernels, into a worker-owned scratch
 *    buffer that is swapped with the request's payload storage —
 *    zero allocation per request in steady state.
 *
 * Each request carries its submit timestamp; workers stamp
 * completion, so StreamStats reports true submit→complete latency
 * (p50/p99) along with perms/sec and payload GB/s.
 *
 * All accounting lives in an obs::MetricsRegistry
 * (StreamOptions::metrics): per-worker request/hit counters, a
 * submit→complete latency histogram, ring-occupancy gauges, and
 * doorbell wake counts. StreamStats is a merged view over those
 * instruments, and the same series are exportable as Prometheus
 * text or JSON via obs/export.hh. Passing metrics = nullptr turns
 * the instrumentation off (and stats() dark) for baseline runs.
 *
 * Contract: producers must keep polling their results; a worker
 * facing a full result ring waits (backpressure) rather than drop.
 * Call stop() only after draining (received == submitted), or keep
 * polling concurrently while stop() runs.
 */

#ifndef SRBENES_CORE_STREAM_HH
#define SRBENES_CORE_STREAM_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.hh"
#include "core/router.hh"

namespace srbenes
{

class ResilientRouter;

/**
 * 128-bit content hash of a permutation: two independent 8-lane
 * multiply-xorshift chains, folded with a splitmix finalizer. The
 * independent lanes break the sequential multiply dependency that
 * makes a classic FNV pass latency-bound, so hashing an N-word
 * destination vector runs at near store-bandwidth. Computed once at
 * submit time and reused for worker dispatch and both cache tiers.
 */
struct Hash128
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    bool operator==(const Hash128 &other) const = default;
};

Hash128 hashPermutation128(const Permutation &d);

/**
 * Start/stop lifecycle for a component whose running()/stats() are
 * documented readable from any thread: each clock stamp is published
 * BEFORE its flag (release) and read back after it (acquire), so a
 * reader that observes a flag set also observes the stamp that
 * transition certified. This publication protocol regressed once
 * (the stamp's visibility no longer certified by the flag) — the
 * model suite pins it: test_model_mutation re-breaks it under
 * SRBENES_MODEL_MUTATE and asserts srb_model finds the stale-stamp
 * schedule.
 */
class LifecycleStamps
{
  public:
    bool
    started() const
    {
        // order: acquire pairs with markStarted()'s release, so a
        // true return certifies startNs().
        return started_.load(std::memory_order_acquire);
    }

    bool
    stopped() const
    {
        // order: acquire pairs with markStopped()'s release; see
        // started().
        return stopped_.load(std::memory_order_acquire);
    }

    /** Stamp the start clock, then raise the flag. */
    void
    markStarted(std::uint64_t ns)
    {
        // order: stamp relaxed, then flag release (kPublish) — a
        // reader that acquires started() == true sees this stamp.
        start_ns_.store(ns, std::memory_order_relaxed);
        started_.store(true, kPublish);
    }

    void
    markStopped(std::uint64_t ns)
    {
        // order: stamp relaxed, then flag release (kPublish); see
        // markStarted().
        stop_ns_.store(ns, std::memory_order_relaxed);
        stopped_.store(true, kPublish);
    }

    /**
     * Restart the elapsed-time clock (benchmark warmup exclusion).
     * The caller guarantees quiescence; a racing reader sees either
     * the old or the new epoch, both coherent windows.
     */
    void
    restartClock(std::uint64_t ns)
    {
        // order: relaxed; quiescent epoch restart, see above.
        start_ns_.store(ns, std::memory_order_relaxed);
    }

    std::uint64_t
    startNs() const
    {
        // order: relaxed; certified by the acquire in started().
        return start_ns_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    stopNs() const
    {
        // order: relaxed; certified by the acquire in stopped().
        return stop_ns_.load(std::memory_order_relaxed);
    }

  private:
    /**
     * Publication order of the flag stores. SRBENES_MODEL_MUTATE
     * reintroduces the historical regression (flag no longer
     * certifies its stamp) so the mutation suite can prove the
     * model checker catches it; never defined in production builds.
     */
#ifdef SRBENES_MODEL_MUTATE
    // order: deliberately broken publication for the mutation suite.
    static constexpr std::memory_order kPublish =
        std::memory_order_relaxed;
#else
    // order: release publishes the stamp stored just before the
    // flag; pairs with the acquire in started()/stopped().
    static constexpr std::memory_order kPublish =
        std::memory_order_release;
#endif

    sync::Atomic<bool> started_{false};
    sync::Atomic<bool> stopped_{false};
    sync::Atomic<std::uint64_t> start_ns_{0};
    sync::Atomic<std::uint64_t> stop_ns_{0};
};

/**
 * Eventcount doorbell: lets a consumer block (futex, via C++20
 * atomic wait) when its rings run dry, without the classic
 * single-core spin-yield pathology — sched_yield under CFS often
 * returns straight to the caller, burning a whole scheduler quantum
 * before the peer runs. ring() costs two uncontended atomic ops when
 * nobody is waiting.
 */
class Doorbell
{
  public:
    Doorbell() = default;

    /**
     * Test-only: start the sequence counter at @p initial_seq so
     * wraparound schedules (seq_ near its uint64 maximum) are
     * reachable in the model suite without 2^64 rings.
     */
    explicit Doorbell(std::uint64_t initial_seq) : seq_(initial_seq) {}

    /** Wake any sleeper; call after publishing work. */
    void
    ring()
    {
        // order: release publishes the work enqueued before ring();
        // pairs with the acquire loads of seq_ in waitUntil.
        seq_.fetch_add(1, std::memory_order_release);
        // order: acquire pairs with the waiter's seq_cst
        // registration: either this load sees the waiter (notify
        // runs) or the waiter's wait() sees the new seq_.
        if (waiters_.load(std::memory_order_acquire) > 0)
            seq_.notify_all();
    }

    /**
     * waitUntil bounded by an absolute obs::monotonicNs() deadline
     * (0 = unbounded); returns the predicate's final value. C++20
     * atomic wait has no timed variant, so the bounded path
     * sleep-polls at ~50us instead of futex-waiting — timed waits
     * sit on the slow path (deadline-near requests), never in the
     * steady-state throughput loop.
     */
    template <typename Pred>
    bool
    waitUntilFor(Pred pred, std::uint64_t deadline_ns)
    {
        if (deadline_ns == 0) {
            waitUntil(pred);
            return true;
        }
        while (!pred()) {
            if (obs::monotonicNs() >= deadline_ns)
                return pred();
            std::this_thread::sleep_for(
                std::chrono::microseconds(50));
        }
        return true;
    }

    /**
     * Block until @p pred() is true. The predicate is re-evaluated
     * after every ring; spurious wakes are harmless.
     */
    template <typename Pred>
    void
    waitUntil(Pred pred)
    {
        while (!pred()) {
            // order: acquire so state published before the last
            // ring() is visible to the pred() re-check below.
            const std::uint64_t s =
                seq_.load(std::memory_order_acquire);
            if (pred())
                return;
            // order: seq_cst — the registration must be globally
            // ordered against ring()'s seq_ increment, or both
            // sides could miss each other (lost wakeup).
            waiters_.fetch_add(1, std::memory_order_seq_cst);
            if (!pred())
                // order: acquire re-synchronizes with the ring()
                // that advanced seq_ past s.
                seq_.wait(s, std::memory_order_acquire);
            // order: release keeps the deregistration ordered after
            // the wait for ring()'s waiter count check.
            waiters_.fetch_sub(1, std::memory_order_release);
        }
    }

  private:
    sync::Atomic<std::uint64_t> seq_{0};
    sync::Atomic<std::uint32_t> waiters_{0};
};

/**
 * Lock-free single-producer single-consumer ring of fixed
 * power-of-two capacity. tryPush only consumes @p v on success.
 */
template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity_pow2)
        : buf_(capacity_pow2), mask_(capacity_pow2 - 1)
    {
    }

    bool
    tryPush(T &&v)
    {
        // order: relaxed; tail_ is producer-owned, this reads our
        // own last store.
        const std::uint64_t t = tail_.load(std::memory_order_relaxed);
        if (t - head_cache_ >= buf_.size()) {
            // order: acquire pairs with the consumer's release
            // store of head_, so the freed slot is really empty.
            head_cache_ = head_.load(std::memory_order_acquire);
            if (t - head_cache_ >= buf_.size())
                return false;
        }
        buf_[t & mask_] = std::move(v);
        // order: release publishes the slot write above before the
        // new tail_; pairs with the consumer's acquire load.
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    bool
    tryPop(T &out)
    {
        // order: relaxed; head_ is consumer-owned, this reads our
        // own last store.
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        if (h == tail_cache_) {
            // order: acquire pairs with the producer's release
            // store of tail_, so the slot contents are visible.
            tail_cache_ = tail_.load(std::memory_order_acquire);
            if (h == tail_cache_)
                return false;
        }
        out = std::move(buf_[h & mask_]);
        // order: release publishes the slot vacancy before the new
        // head_; pairs with the producer's acquire load.
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    bool
    empty() const
    {
        // order: acquire on both indices so cross-thread pollers
        // (doorbell predicates) see slots published before them.
        return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire);
    }

    bool
    full() const
    {
        // order: acquire on both indices; see empty().
        return tail_.load(std::memory_order_acquire) -
                   head_.load(std::memory_order_acquire) >=
               buf_.size();
    }

    /** Entries currently queued (approximate under concurrency). */
    std::size_t
    size() const
    {
        return static_cast<std::size_t>(
            // order: acquire on both indices; see empty().
            tail_.load(std::memory_order_acquire) -
            head_.load(std::memory_order_acquire));
    }

  private:
    std::vector<T> buf_;
    std::uint64_t mask_;
    alignas(64) sync::Atomic<std::uint64_t> head_{0}; //!< consumer
    alignas(64) std::uint64_t tail_cache_ = 0;        //!< consumer-owned
    alignas(64) sync::Atomic<std::uint64_t> tail_{0}; //!< producer
    alignas(64) std::uint64_t head_cache_ = 0;        //!< producer-owned
};

/** One routing request in flight. */
struct StreamRequest
{
    std::uint64_t id = 0;
    unsigned producer = 0;
    Hash128 hash;
    std::shared_ptr<const Permutation> perm;
    std::vector<Word> payload;
    std::uint64_t submit_ns = 0;
    /** Absolute obs::monotonicNs() deadline; 0 = none. Checked when
     *  the worker pops the request (queue expiry) and forwarded to
     *  the resilient serving path. */
    std::uint64_t deadline_ns = 0;
};

/** One completed request. */
struct StreamResult
{
    std::uint64_t id = 0;
    unsigned worker = 0;
    /** Ok: the payload routed into output order. Otherwise: the
     *  ORIGINAL payload handed back unrouted. */
    std::vector<Word> payload;
    /** Why the request failed; Ok on success. */
    RouteErrc status = RouteErrc::Ok;
    /** Tier that served it (resilient path; Primary otherwise). */
    ServeTier tier = ServeTier::Primary;
    std::uint64_t submit_ns = 0;
    std::uint64_t complete_ns = 0;

    bool ok() const { return status == RouteErrc::Ok; }
    std::uint64_t latencyNs() const { return complete_ns - submit_ns; }
};

struct StreamOptions
{
    /** Router worker threads (K). */
    unsigned workers = 2;
    /** Producer handles that will submit (fixed up front). */
    unsigned producers = 1;
    /** Requests per (producer, worker) ring; power of two. */
    std::size_t ring_capacity = 1024;
    /** Per-worker local plan-cache slots; power of two. */
    std::size_t local_cache_slots = 256;
    /** Shared Router tier capacity / shards. */
    std::size_t shared_cache_capacity = 512;
    unsigned shared_cache_shards = 8;
    /** Shared-tier resident-byte budget (Router plan_cache_bytes);
     *  0 keeps the entry-count capacity as the only limit. */
    std::size_t shared_cache_bytes = 0;
    bool prefer_waksman = false;
    /**
     * Confirm local-tier hits with a full permutation comparison
     * (the shared Router tier always confirms). Off trusts the
     * 128-bit content hash as identity.
     */
    bool verify_local_hits = true;
    /**
     * Registry receiving the engine's instruments (and, through it,
     * the shared Router tier's). nullptr disables instrumentation
     * and leaves stats() dark — the overhead bench's baseline.
     */
    obs::MetricsRegistry *metrics = obs::defaultRegistry();
    /**
     * Serve every request through this caller-owned resilient
     * router (its fabric size must equal the engine's) instead of
     * the bare fast-path Router: workers walk the degraded-mode
     * fallback chain per request and stamp the serving tier and
     * status into the StreamResult. The engine then builds no
     * Router of its own — plans come from the resilient router's
     * inner one. Must outlive the engine. nullptr = fast path.
     */
    ResilientRouter *resilient = nullptr;
    /**
     * RELATIVE deadline stamped on every trySubmit() that does not
     * pass its own; 0 = none. Converted to an absolute
     * obs::monotonicNs() instant at submit time.
     */
    std::uint64_t default_deadline_ns = 0;
    /**
     * Fabrics with n <= inline_max_n execute every request inline
     * on the producer thread instead of crossing the worker rings —
     * below this size plan + gather is cheaper than a ring
     * round-trip plus wakeup. 0 disables the inline path. Outcomes
     * are indistinguishable from the ring path (deadlines, shed,
     * tier stamping, counters); only the thread that does the work
     * changes.
     */
    unsigned inline_max_n = 9;
    /**
     * Called on the WORKER thread right after a result becomes
     * pollable for producer p (doorbell already rung). For callers
     * whose producer thread blocks somewhere other than
     * awaitResult — the srbd server sleeps in epoll_wait — this is
     * the hook that turns a completion into an external wakeup
     * (e.g. an eventfd write). Must be cheap and thread-safe.
     * Inline-path results never notify: they are pollable before
     * trySubmit returns on the producer's own thread.
     */
    std::function<void(unsigned producer)> result_notify;
};

/**
 * Aggregate accounting over one start()..stop() run — a merged view
 * over the engine's registry instruments, not a separate counter
 * implementation. All zeros when StreamOptions::metrics was null.
 */
struct StreamStats
{
    std::uint64_t requests = 0;
    std::uint64_t payload_words = 0;
    double elapsed_sec = 0;
    double perms_per_sec = 0;
    double payload_gb_per_sec = 0;
    /**
     * Submit→complete latency percentiles, estimated from the
     * merged per-worker log2 histograms (~12% resolution).
     */
    std::uint64_t p50_ns = 0;
    std::uint64_t p99_ns = 0;
    /** Plan lookups resolved in a worker's local table. */
    std::uint64_t local_hits = 0;
    /** Local misses that consulted the shared Router tier. */
    std::uint64_t shared_lookups = 0;
    /** Times a worker slept on its doorbell and was woken. */
    std::uint64_t doorbell_wakes = 0;
    /** trySubmit refusals on a full ring (the shed-load signal). */
    std::uint64_t sheds = 0;
    /** Requests served inline on a producer thread (small-N path). */
    std::uint64_t inline_served = 0;
    /** Requests that expired (queued past their deadline, or the
     *  resilient chain ran out of time). */
    std::uint64_t deadline_expired = 0;
    /** Resilient serves from a fallback tier (not Primary). */
    std::uint64_t degraded = 0;
    /** Requests the resilient chain failed (fault_detected). */
    std::uint64_t route_failures = 0;
    /** The shared tier's per-shard counters. */
    std::vector<CacheShardStats> shared_shards;
};

class StreamEngine
{
    /** One slot of an open-addressed plan table (defined below). */
    struct LocalSlot;

  public:
    explicit StreamEngine(unsigned n, StreamOptions opts = {});
    ~StreamEngine();

    StreamEngine(const StreamEngine &) = delete;
    StreamEngine &operator=(const StreamEngine &) = delete;

    unsigned n() const { return router_.engine().n(); }
    Word numLines() const { return router_.engine().numLines(); }
    const Router &router() const { return router_; }
    const StreamOptions &options() const { return opts_; }

    /**
     * The submitting half of the pipeline. Each producer handle is
     * single-threaded: one thread per handle, fixed at construction
     * via StreamOptions::producers.
     */
    class Producer
    {
      public:
        /**
         * Hash @p perm, stamp the submit time, and enqueue on the
         * owning worker's ring — or, on a small fabric (n <=
         * StreamOptions::inline_max_n), execute it inline right here
         * and stage the result for tryPoll. @p payload is consumed
         * only on success; false means the request was shed: the
         * affine worker's ring AND its spillover neighbour were
         * full (or the inline result queue was), so poll results,
         * then retry. Re-submissions of a recently seen shared
         * Permutation object skip re-hashing: the handle memoizes
         * hashes by pointer identity in a small direct-mapped
         * table, holding a reference per slot so a memoized address
         * can never be recycled under it.
         */
        bool trySubmit(std::uint64_t id,
                       std::shared_ptr<const Permutation> perm,
                       std::vector<Word> &payload);

        /**
         * trySubmit with an explicit ABSOLUTE obs::monotonicNs()
         * deadline (0 = none), overriding
         * StreamOptions::default_deadline_ns. A false return is the
         * shed-load signal: the target worker's ring is full and the
         * request was refused, counted in StreamStats::sheds.
         */
        bool trySubmit(std::uint64_t id,
                       std::shared_ptr<const Permutation> perm,
                       std::vector<Word> &payload,
                       std::uint64_t deadline_ns);

        /** Pop one completed result from any worker, if available. */
        bool tryPoll(StreamResult &out);

        /**
         * Block (futex) until a result is available and pop it.
         * Requires received() < submitted(); with nothing in flight
         * this never returns.
         */
        void awaitResult(StreamResult &out);

        /**
         * awaitResult bounded by a RELATIVE timeout: false when no
         * result arrived within @p timeout_ns (the request itself
         * stays in flight — poll again later).
         */
        bool awaitResultFor(StreamResult &out,
                            std::uint64_t timeout_ns);

        std::uint64_t submitted() const { return submitted_; }
        std::uint64_t received() const { return received_; }

        /** Requests submitted but not yet polled back. */
        std::uint64_t inFlight() const { return submitted_ - received_; }

        /**
         * The drain hook: await every in-flight result and hand
         * each to @p sink. On return nothing this handle submitted
         * is still queued anywhere in the engine — the graceful-
         * shutdown guarantee srbd's SIGTERM path is built on.
         */
        void drain(const std::function<void(StreamResult &&)> &sink);

      private:
        friend class StreamEngine;

        /** One entry of the pointer-keyed hash memo. */
        struct MemoSlot
        {
            std::shared_ptr<const Permutation> perm; //!< keepalive
            Hash128 hash;
        };
        static constexpr std::size_t kMemoSlots = 32;

        const Hash128 &
        memoizedHash(const std::shared_ptr<const Permutation> &perm);

        StreamEngine *eng_ = nullptr;
        unsigned index_ = 0;
        unsigned poll_rr_ = 0;
        std::uint64_t submitted_ = 0;
        std::uint64_t received_ = 0;
        MemoSlot memo_[kMemoSlots];

        /**
         * @{ Small-N inline path (producer-thread-owned): a private
         * plan table in front of the shared Router tier, a scratch
         * vector for the gather, and a bounded queue of completed
         * results drained by tryPoll. Its capacity mirrors
         * ring_capacity, preserving shed-on-full semantics.
         */
        std::vector<LocalSlot> table_;
        std::uint64_t op_ = 0;
        std::vector<Word> scratch_;
        std::unique_ptr<SpscRing<StreamResult>> inline_results_;
        /** @} */
    };

    /** Producer handle @p i (0 <= i < options().producers). */
    Producer &producer(unsigned i);

    /** Launch the K worker threads. */
    void start();

    /**
     * Signal the workers to finish every queued request and join
     * them. Producers must have stopped submitting; results still
     * waiting in completion rings remain pollable after stop().
     */
    void stop();

    bool
    running() const
    {
        // Acquire flag reads (LifecycleStamps); callers on other
        // threads see the transition (stats() is live at any time).
        return life_.started() && !life_.stopped();
    }

    /**
     * Merged accounting over the registry instruments. Counters and
     * latency estimates are live at any time; elapsed time is exact
     * once stop() returned.
     */
    StreamStats stats() const;

    /**
     * Zero the per-worker instruments (counters and latency
     * histograms) and restart the elapsed-time clock, so a benchmark
     * can exclude its warmup phase. The engine must be quiescent:
     * every submitted request drained and no concurrent submissions.
     * Cached plans (local tables and the shared tier) survive; the
     * shared-tier hit/miss/eviction counters span the engine's whole
     * lifetime.
     */
    void resetStats();

  private:
    /**
     * One slot of an open-addressed plan table — worker-local on
     * the ring path, producer-local on the inline path.
     */
    struct LocalSlot
    {
        Hash128 hash;
        std::shared_ptr<const RoutePlan> plan;
        std::uint64_t stamp = 0;
    };

    struct alignas(64) WorkerState
    {
        std::vector<LocalSlot> table;
        std::uint64_t op = 0;
        std::vector<Word> scratch;
        /** Rung by producers on submit and on result-ring drain. */
        Doorbell bell;

        /** @{ Registry-served instruments; null when metrics off. */
        obs::Counter *requests = nullptr;
        obs::Counter *local_hits = nullptr;
        obs::Counter *shared_lookups = nullptr;
        obs::Counter *doorbell_wakes = nullptr;
        obs::Counter *deadline_expired = nullptr;
        obs::Counter *degraded = nullptr;
        obs::Counter *route_failures = nullptr;
        obs::Gauge *queue_depth = nullptr;
        obs::Histogram *latency_ns = nullptr;
        /** @} */
    };

    SpscRing<StreamRequest> &
    submitRing(unsigned producer, unsigned worker)
    {
        return *submit_rings_[std::size_t{producer} * opts_.workers +
                              worker];
    }
    SpscRing<StreamResult> &
    resultRing(unsigned producer, unsigned worker)
    {
        return *result_rings_[std::size_t{producer} * opts_.workers +
                              worker];
    }

    void workerMain(unsigned w);
    void process(WorkerState &ws, unsigned w, StreamRequest &req);
    /**
     * The serving core shared by the ring and inline paths: deadline
     * expiry, resilient chain or plan-lookup + gather, tier and
     * timestamp stamping, counter attribution to @p ws. The plan
     * table / scratch are the caller's (worker-owned or
     * producer-owned); @p ws's instruments are thread-sharded, so
     * attribution from a producer thread is safe.
     */
    void serve(WorkerState &ws, unsigned w, StreamRequest &req,
               StreamResult &res, std::vector<LocalSlot> &table,
               std::uint64_t &op, std::vector<Word> &scratch);
    const RoutePlan *lookupPlan(WorkerState &ws,
                                const StreamRequest &req);
    const RoutePlan *lookupIn(std::vector<LocalSlot> &table,
                              std::uint64_t &op, WorkerState &ws,
                              const StreamRequest &req);

    /**
     * Fast path: the engine owns its Router. Resilient path: plans
     * and serving come from the caller's ResilientRouter and
     * owned_router_ stays empty; router_ then aliases its inner
     * Router (every use is const).
     */
    std::unique_ptr<Router> owned_router_;
    const Router &router_;
    ResilientRouter *resilient_ = nullptr;
    StreamOptions opts_;
    /** True when this fabric takes the small-N inline path. */
    bool inline_enabled_ = false;
    /** Submit refusals on full rings; null when metrics off. */
    obs::Counter *sheds_ = nullptr;
    /** Requests served inline; null when metrics off. */
    obs::Counter *inline_served_ = nullptr;
    std::vector<std::unique_ptr<SpscRing<StreamRequest>>> submit_rings_;
    std::vector<std::unique_ptr<SpscRing<StreamResult>>> result_rings_;
    /** Rung by workers when they complete a result for producer i. */
    std::vector<std::unique_ptr<Doorbell>> producer_bells_;
    std::vector<Producer> producers_;
    std::vector<std::unique_ptr<WorkerState>> workers_;
    std::vector<std::thread> threads_;
    sync::Atomic<bool> stop_requested_{false};
    /**
     * Lifecycle flags and clock stamps are read by stats() and
     * running() from any thread while the owning thread runs
     * start()/stop()/resetStats(); LifecycleStamps carries the
     * stamp-before-flag publication protocol.
     */
    LifecycleStamps life_;
};

} // namespace srbenes

#endif // SRBENES_CORE_STREAM_HH
