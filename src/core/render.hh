/**
 * @file
 * Text rendering of routes through B(n), used to reproduce Figs. 4
 * and 5 of the paper: the destination tag (in binary) on every line
 * at every stage, the state of every switch, and the final outcome.
 */

#ifndef SRBENES_CORE_RENDER_HH
#define SRBENES_CORE_RENDER_HH

#include <string>

#include "core/self_routing.hh"

namespace srbenes
{

/** Binary string of the low @p n bits of @p v, most significant
 *  first. */
std::string toBinary(Word v, unsigned n);

/**
 * Render a traced route: one row per line with the tag it carries at
 * the input of each stage and at the outputs, column headers with the
 * stage's control bit, then the switch-state matrix and the verdict.
 * @p trace must come from the same route() call that produced
 * @p result.
 */
std::string renderRoute(const BenesTopology &topo,
                        const RouteTrace &trace,
                        const RouteResult &result);

/**
 * Compact switch-state diagram: one row per switch position, one
 * column per stage, '=' for straight and 'X' for crossed -- the
 * at-a-glance shape of a realization (e.g.\ the palindrome
 * structure of a BPC route).
 */
std::string renderStates(const BenesTopology &topo,
                         const SwitchStates &states);

} // namespace srbenes

#endif // SRBENES_CORE_RENDER_HH
