#include "core/resilient.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/two_pass.hh"

namespace srbenes
{

namespace
{

bool
deadlinePassed(std::uint64_t deadline_ns)
{
    return deadline_ns != 0 && obs::monotonicNs() >= deadline_ns;
}

RouteOutcome
deadlineFailure(ServeTier deepest)
{
    RouteError err;
    err.code = RouteErrc::DeadlineExceeded;
    err.tier = deepest;
    err.detail = "deadline passed before a verified result";
    return RouteOutcome::failure(std::move(err));
}

} // namespace

const char *
switchHealthName(SwitchHealth h) noexcept
{
    switch (h) {
      case SwitchHealth::Healthy:
        return "healthy";
      case SwitchHealth::Suspect:
        return "suspect";
    }
    return "?";
}

ResilientRouter::ResilientRouter(unsigned n, ResilientOptions opts)
    : opts_(opts),
      router_(n, opts.prefer_waksman, opts.plan_cache_capacity,
              opts.cache_shards, opts.metrics),
      metrics_(opts.metrics)
{
    const BenesTopology &topo = fabric().topology();
    health_.assign(topo.numStages(),
                   std::vector<SwitchHealth>(topo.switchesPerStage(),
                                             SwitchHealth::Healthy));

    if (!metrics_)
        return;
    instance_ = metrics_->uniqueInstance("resilient");
    for (ServeTier t :
         {ServeTier::Primary, ServeTier::Reroute, ServeTier::TwoPass,
          ServeTier::Failed})
        m_serves_[static_cast<int>(t)] = &metrics_->counter(
            "srbenes_resilient_serves_total",
            {{"resilient", instance_}, {"tier", serveTierName(t)}});
    m_probes_ = &metrics_->counter("srbenes_resilient_probes_total",
                                   {{"resilient", instance_}});
    m_retries_ = &metrics_->counter(
        "srbenes_resilient_retries_total", {{"resilient", instance_}});
    m_healthy_ = &metrics_->gauge(
        "srbenes_resilient_believed_healthy",
        {{"resilient", instance_}});
    m_healthy_->set(1);
    m_suspect_count_ = &metrics_->gauge(
        "srbenes_resilient_suspect_switches",
        {{"resilient", instance_}});
    m_serve_ns_ = &metrics_->histogram("srbenes_resilient_serve_ns",
                                       {{"resilient", instance_}});
}

void
ResilientRouter::injectFault(const StuckFault &fault)
{
    const BenesTopology &topo = fabric().topology();
    if (fault.stage >= topo.numStages() ||
        fault.switch_index >= topo.switchesPerStage())
        fatal("fault at stage %u switch %llu out of range",
              fault.stage,
              static_cast<unsigned long long>(fault.switch_index));
    WriterLock lock(mu_);
    faults_.push_back(fault);
}

void
ResilientRouter::clearFaults()
{
    WriterLock lock(mu_);
    faults_.clear();
}

std::vector<StuckFault>
ResilientRouter::injectedFaults() const
{
    ReaderLock lock(mu_);
    return faults_;
}

void
ResilientRouter::publishScoreboard(
    const std::vector<StuckFault> &suspects, bool healthy) const
{
    // A re-probe that sees the same picture must NOT open a new
    // scoreboard generation: epoch churn would invalidate every
    // cached degraded plan and send each serve back into the
    // decomposition search.
    if (suspects == suspects_ && healthy == believed_healthy_)
        return;
    // Per-switch gauges are created lazily on FIRST suspicion: a
    // healthy fleet exports one boolean and one total, not
    // (2n-1) N/2 series. Old suspects are reset, not unregistered.
    auto switchGauge = [this](const StuckFault &f) -> obs::Gauge * {
        if (!metrics_)
            return nullptr;
        return &metrics_->gauge(
            "srbenes_resilient_switch_health",
            {{"resilient", instance_},
             {"stage", std::to_string(f.stage)},
             {"switch", std::to_string(f.switch_index)}});
    };
    for (const StuckFault &old : suspects_) {
        health_[old.stage][old.switch_index] = SwitchHealth::Healthy;
        if (obs::Gauge *g = switchGauge(old))
            g->set(static_cast<int>(SwitchHealth::Healthy));
    }
    for (const StuckFault &f : suspects) {
        health_[f.stage][f.switch_index] = SwitchHealth::Suspect;
        if (obs::Gauge *g = switchGauge(f))
            g->set(static_cast<int>(SwitchHealth::Suspect));
    }
    suspects_ = suspects;
    believed_healthy_ = healthy;
    ++epoch_;
    if (m_healthy_)
        m_healthy_->set(believed_healthy_ ? 1 : 0);
    if (m_suspect_count_)
        m_suspect_count_->set(
            static_cast<std::int64_t>(suspects.size()));
}

void
ResilientRouter::ensureTests() const
{
    // The detection test set and its healthy reference tags are
    // deterministic in the probe seed and immutable once published
    // by the once-flag, so every probe reuses them without locking.
    std::call_once(tests_once_, [this] {
        Prng prng(opts_.probe_prng_seed);
        tests_ = faultTestSet(fabric(), prng);
        healthy_tags_.reserve(tests_.size());
        for (const Permutation &t : tests_)
            healthy_tags_.push_back(fabric().route(t).output_tags);
    });
}

ProbeReport
ResilientRouter::probe() const
{
    ensureTests();
    probes_.inc();
    if (m_probes_)
        m_probes_->inc();

    const std::vector<StuckFault> hw = injectedFaults();

    // Drive the test set through the fabric and record what the
    // output-side observer sees. Only tags are consumed from here
    // on: the diagnosis reconstructs the fault hypothesis from them.
    ProbeReport report;
    report.tests_run = tests_.size();
    std::vector<std::vector<Word>> observed;
    observed.reserve(tests_.size());
    for (std::size_t i = 0; i < tests_.size(); ++i) {
        observed.push_back(
            routeWithFaults(fabric(), tests_[i], hw).output_tags);
        if (observed.back() != healthy_tags_[i])
            ++report.tests_mismatched;
    }
    report.healthy = report.tests_mismatched == 0;
    if (!report.healthy)
        report.suspects =
            diagnoseSingleFault(fabric(), tests_, observed);

    {
        WriterLock lock(mu_);
        publishScoreboard(report.suspects, report.healthy);
        report.epoch = epoch_;
    }
    // order: relaxed; the probe pacing counter is approximate by
    // design (racing serves may skip or double a tick).
    serves_since_probe_.store(0, std::memory_order_relaxed);
    return report;
}

SwitchHealth
ResilientRouter::switchHealth(unsigned stage, Word sw) const
{
    ReaderLock lock(mu_);
    if (stage >= health_.size() || sw >= health_[stage].size())
        fatal("switch (%u, %llu) out of range", stage,
              static_cast<unsigned long long>(sw));
    return health_[stage][sw];
}

std::vector<StuckFault>
ResilientRouter::suspects() const
{
    ReaderLock lock(mu_);
    return suspects_;
}

bool
ResilientRouter::believedHealthy() const
{
    ReaderLock lock(mu_);
    return believed_healthy_;
}

std::uint64_t
ResilientRouter::probeEpoch() const
{
    ReaderLock lock(mu_);
    return epoch_;
}

ResilientStats
ResilientRouter::stats() const
{
    ResilientStats s;
    s.serves_primary =
        serves_by_tier_[static_cast<int>(ServeTier::Primary)].value();
    s.serves_reroute =
        serves_by_tier_[static_cast<int>(ServeTier::Reroute)].value();
    s.serves_two_pass =
        serves_by_tier_[static_cast<int>(ServeTier::TwoPass)].value();
    s.failures_fault = failures_fault_.value();
    s.failures_deadline = failures_deadline_.value();
    s.probes = probes_.value();
    s.retries = retries_.value();
    s.degraded_cache_hits = degraded_hits_.value();
    return s;
}

std::shared_ptr<const ResilientRouter::DegradedEntry>
ResilientRouter::degradedLookup(std::uint64_t hash,
                                std::uint64_t epoch) const
{
    if (opts_.degraded_cache_capacity == 0)
        return nullptr;
    MutexLock lock(degraded_mu_);
    auto it = degraded_.find(hash);
    if (it == degraded_.end() || it->second->epoch != epoch)
        return nullptr;
    return it->second;
}

void
ResilientRouter::degradedStore(
    std::uint64_t hash, std::shared_ptr<const DegradedEntry> e) const
{
    if (opts_.degraded_cache_capacity == 0)
        return;
    MutexLock lock(degraded_mu_);
    // Stale generations die on lookup, so blunt eviction (drop an
    // arbitrary entry) keeps the map bounded without an LRU chain.
    if (degraded_.size() >= opts_.degraded_cache_capacity &&
        degraded_.find(hash) == degraded_.end())
        degraded_.erase(degraded_.begin());
    degraded_[hash] = std::move(e);
}

RouteOutcome
ResilientRouter::tryPrimary(const Permutation &d,
                            const std::vector<Word> &data,
                            const std::vector<StuckFault> &hw) const
{
    const auto plan = router_.planCached(d);
    switch (plan->strategy) {
      case RouteStrategy::SelfRouting:
        return routeWithFaults(fabric(), d, hw, data,
                               RoutingMode::SelfRouting);
      case RouteStrategy::OmegaBit:
        return routeWithFaults(fabric(), d, hw, data,
                               RoutingMode::OmegaBit);
      case RouteStrategy::TwoPass: {
        RouteOutcome first =
            routeWithFaults(fabric(), plan->two_pass->first, hw, data,
                            RoutingMode::SelfRouting);
        if (!first)
            return first;
        return routeWithFaults(fabric(), plan->two_pass->second, hw,
                               first.takeValue(),
                               RoutingMode::OmegaBit);
      }
      case RouteStrategy::Waksman: {
        const RouteResult res = routeWithFaultsStates(
            fabric(), d, hw, *plan->states);
        if (!res.success) {
            RouteError err;
            err.code = RouteErrc::FaultDetected;
            err.tier = ServeTier::Primary;
            err.detail =
                std::to_string(res.misrouted_outputs.size()) +
                " outputs received a wrong tag";
            return RouteOutcome::failure(std::move(err));
        }
        std::vector<Word> out(data.size());
        for (Word i = 0; i < data.size(); ++i)
            out[res.realized_dest[i]] = data[i];
        return RouteOutcome::success(std::move(out));
      }
    }
    panic("unreachable routing strategy");
}

RouteOutcome
ResilientRouter::tryReroute(const Permutation &d,
                            const std::vector<Word> &data,
                            const std::vector<StuckFault> &hw,
                            const std::vector<StuckFault> &suspect,
                            std::uint64_t deadline_ns) const
{
    const BenesTopology &topo = fabric().topology();

    // Candidate pin sets: one per diagnosed suspect (forcing the
    // stuck switch INTO its stuck value makes the fault a
    // don't-care), plus the unpinned set so plain re-seeded
    // decompositions get a shot when the diagnosis came back empty.
    std::vector<std::vector<StatePin>> pin_sets;
    for (const StuckFault &c : suspect)
        pin_sets.push_back(
            {StatePin{c.stage, c.switch_index, c.stuck_value}});
    pin_sets.emplace_back();

    for (const auto &pins : pin_sets) {
        for (unsigned seed = 0; seed < opts_.reroute_seeds; ++seed) {
            if (deadlinePassed(deadline_ns))
                return deadlineFailure(ServeTier::Reroute);
            const auto states =
                waksmanSetupPinned(topo, d, pins, seed);
            if (!states)
                continue; // this greedy descent failed; reseed
            const RouteResult res =
                routeWithFaultsStates(fabric(), d, hw, *states);
            if (!res.success)
                continue;
            auto entry = std::make_shared<DegradedEntry>(
                probeEpoch(), ServeTier::Reroute, d);
            entry->states =
                std::make_shared<const SwitchStates>(*states);
            degradedStore(Router::hashPermutation(d),
                          std::move(entry));
            std::vector<Word> out(data.size());
            for (Word i = 0; i < data.size(); ++i)
                out[res.realized_dest[i]] = data[i];
            return RouteOutcome::success(std::move(out),
                                         ServeTier::Reroute);
        }
    }
    RouteError err;
    err.code = RouteErrc::FaultDetected;
    err.tier = ServeTier::Reroute;
    err.detail = "no pinned decomposition verified";
    return RouteOutcome::failure(std::move(err));
}

RouteOutcome
ResilientRouter::tryTwoPass(const Permutation &d,
                            const std::vector<Word> &data,
                            const std::vector<StuckFault> &hw,
                            std::uint64_t deadline_ns) const
{
    for (unsigned seed = 0; seed < opts_.two_pass_seeds; ++seed) {
        if (deadlinePassed(deadline_ns))
            return deadlineFailure(ServeTier::TwoPass);
        const TwoPassPlan tp = twoPassPlanSeeded(fabric(), d, seed);
        RouteOutcome first = routeWithFaults(
            fabric(), tp.first, hw, data, RoutingMode::SelfRouting);
        if (!first)
            continue;
        RouteOutcome second =
            routeWithFaults(fabric(), tp.second, hw,
                            first.takeValue(), RoutingMode::OmegaBit);
        if (!second)
            continue;
        auto entry = std::make_shared<DegradedEntry>(
            probeEpoch(), ServeTier::TwoPass, d);
        entry->two_pass = std::make_shared<const TwoPassPlan>(tp);
        degradedStore(Router::hashPermutation(d), std::move(entry));
        return RouteOutcome::success(second.takeValue(),
                                     ServeTier::TwoPass);
    }
    RouteError err;
    err.code = RouteErrc::FaultDetected;
    err.tier = ServeTier::TwoPass;
    err.detail = "no re-factorization verified";
    return RouteOutcome::failure(std::move(err));
}

RouteOutcome
ResilientRouter::serveOnce(const Permutation &d,
                           const std::vector<Word> &data,
                           std::uint64_t deadline_ns) const
{
    if (deadlinePassed(deadline_ns))
        return deadlineFailure(ServeTier::Primary);

    // Probe pacing: while believed faulty, re-probe every
    // probe_every serves so a repaired fabric climbs back to the
    // Primary tier without an operator nudge.
    if (opts_.probe_every != 0 && !believedHealthy()) {
        // order: relaxed; the pacing counter is approximate by
        // design (racing serves may skip or double a tick).
        if (serves_since_probe_.fetch_add(
                1, std::memory_order_relaxed) +
                1 >=
            opts_.probe_every)
            probe();
    }

    const std::vector<StuckFault> hw = injectedFaults();

    RouteOutcome primary = tryPrimary(d, data, hw);
    if (primary)
        return primary;

    // Primary verification failed: if the scoreboard still says
    // healthy this is news — localize before falling back, so the
    // Reroute tier has suspects to pin.
    if (believedHealthy())
        probe();

    if (deadlinePassed(deadline_ns))
        return deadlineFailure(ServeTier::Primary);

    // A degraded plan already verified this generation skips the
    // search; the pass itself is still tag-verified every serve.
    const std::uint64_t hash = Router::hashPermutation(d);
    if (auto entry = degradedLookup(hash, probeEpoch());
        entry && entry->perm == d) {
        if (entry->tier == ServeTier::Reroute && entry->states) {
            const RouteResult res = routeWithFaultsStates(
                fabric(), d, hw, *entry->states);
            if (res.success) {
                degraded_hits_.inc();
                std::vector<Word> out(data.size());
                for (Word i = 0; i < data.size(); ++i)
                    out[res.realized_dest[i]] = data[i];
                return RouteOutcome::success(std::move(out),
                                             ServeTier::Reroute);
            }
        } else if (entry->tier == ServeTier::TwoPass &&
                   entry->two_pass) {
            RouteOutcome first = routeWithFaults(
                fabric(), entry->two_pass->first, hw, data,
                RoutingMode::SelfRouting);
            if (first) {
                RouteOutcome second = routeWithFaults(
                    fabric(), entry->two_pass->second, hw,
                    first.takeValue(), RoutingMode::OmegaBit);
                if (second) {
                    degraded_hits_.inc();
                    return RouteOutcome::success(
                        second.takeValue(), ServeTier::TwoPass);
                }
            }
        }
    }

    RouteOutcome reroute =
        tryReroute(d, data, hw, suspects(), deadline_ns);
    if (reroute || reroute.errc() == RouteErrc::DeadlineExceeded)
        return reroute;

    if (deadlinePassed(deadline_ns))
        return deadlineFailure(ServeTier::Reroute);

    RouteOutcome two_pass = tryTwoPass(d, data, hw, deadline_ns);
    if (two_pass || two_pass.errc() == RouteErrc::DeadlineExceeded)
        return two_pass;

    RouteError err;
    err.code = RouteErrc::FaultDetected;
    err.tier = ServeTier::TwoPass; // deepest tier attempted
    err.suspects = suspects();
    err.detail = "no fallback tier produced a verified result";
    return RouteOutcome::failure(std::move(err));
}

RouteOutcome
ResilientRouter::route(const Permutation &d,
                       const std::vector<Word> &data,
                       std::uint64_t deadline_ns) const
{
    if (d.size() != numLines())
        fatal("permutation size %zu does not match network N = %llu",
              d.size(), static_cast<unsigned long long>(numLines()));
    if (data.size() != d.size())
        fatal("payload size %zu does not match permutation size %zu",
              data.size(), d.size());

    const std::uint64_t t0 = m_serve_ns_ ? obs::monotonicNs() : 0;
    RouteOutcome out = serveOnce(d, data, deadline_ns);
    for (unsigned retry = 0;
         !out && out.errc() == RouteErrc::FaultDetected &&
         retry < opts_.max_retries;
         ++retry) {
        retries_.inc();
        if (m_retries_)
            m_retries_->inc();
        // A fresh probe between attempts is what makes the retry
        // worth anything: attempt k+1 pins a fresher suspect set.
        probe();
        out = serveOnce(d, data, deadline_ns);
    }

    if (out) {
        serves_by_tier_[static_cast<int>(out.tier())].inc();
        if (m_serves_[static_cast<int>(out.tier())])
            m_serves_[static_cast<int>(out.tier())]->inc();
    } else {
        if (out.errc() == RouteErrc::DeadlineExceeded)
            failures_deadline_.inc();
        else
            failures_fault_.inc();
        if (m_serves_[static_cast<int>(ServeTier::Failed)])
            m_serves_[static_cast<int>(ServeTier::Failed)]->inc();
    }
    if (m_serve_ns_)
        m_serve_ns_->observe(obs::monotonicNs() - t0);
    return out;
}

} // namespace srbenes
