/**
 * @file
 * Stuck-at fault injection and diagnosis for the self-routing
 * fabric.
 *
 * A deployed network needs testability: a switch whose state line is
 * stuck leaves the self-setting rule silently violated for half its
 * traffic. This module injects stuck-at-straight / stuck-at-crossed
 * faults into a route, builds a small destination-tag TEST SET that
 * drives every switch into both states (so any single stuck-at
 * fault misroutes at least one test), and localizes a single fault
 * from the observed output tags.
 *
 * Two structural facts shape the test set.
 *
 * 1. No single F(n) permutation exercises everything: a fully
 *    crossed CLOSING stage would need the upper subnetwork to carry
 *    only odd tags, which no self-routable permutation does.
 *
 * 2. The fabric MASKS many opening-half faults. Stages 0..n-2 make
 *    free path choices; the tag-driven closing stages then correct
 *    whichever decomposition arrives. A stuck opening switch is
 *    invisible on any test whose affected input pair maps onto a
 *    single output pair -- the identity masks every stage-0 fault
 *    this way -- and is only caught by a test where the flipped
 *    decomposition leaves F. The test-set builder therefore covers
 *    faults by OBSERVED DETECTION (output tags change), not by
 *    state coverage.
 */

#ifndef SRBENES_CORE_FAULTS_HH
#define SRBENES_CORE_FAULTS_HH

#include <optional>
#include <vector>

#include "common/prng.hh"
#include "core/route_outcome.hh"
#include "core/self_routing.hh"

namespace srbenes
{

/**
 * Self-route @p d with the given stuck-at faults overriding the
 * Fig. 3 rule at the faulty switches. With an empty fault list the
 * result equals net.route(d, mode) exactly.
 *
 * This is the low-level probe primitive: it reports the raw
 * observable RouteResult (output tags, realized destinations) that
 * the test-set builder and the diagnosis consume. Serving layers
 * should use the RouteOutcome overload below, which verifies the
 * tags and answers in the unified taxonomy.
 */
RouteResult routeWithFaults(const SelfRoutingBenes &net,
                            const Permutation &d,
                            const std::vector<StuckFault> &faults,
                            RoutingMode mode =
                                RoutingMode::SelfRouting);

/**
 * Route with externally loaded switch states (the Waksman path)
 * under stuck-at faults: the fabric is driven by @p states except at
 * the faulty switches, whose stuck line overrides whatever was
 * loaded. With an empty fault list the result equals
 * net.routeWithStates(d, states) exactly. This is the transport the
 * Reroute tier runs: states pinned so the stuck value IS the loaded
 * value route exactly even on the faulty fabric.
 */
RouteResult routeWithFaultsStates(const SelfRoutingBenes &net,
                                  const Permutation &d,
                                  const std::vector<StuckFault> &faults,
                                  const SwitchStates &states);

/**
 * Serving form: carry @p data through the faulty fabric and verify
 * the output tags. Returns the routed payload when every tag reached
 * its numbered output, or a fault_detected RouteError naming how
 * many outputs misrouted. The paper's fabric carries destination
 * tags by construction, so this per-request check is the software
 * analogue of an output-side tag comparator — a faulty fabric is
 * DETECTED, never silently wrong.
 */
RouteOutcome routeWithFaults(const SelfRoutingBenes &net,
                             const Permutation &d,
                             const std::vector<StuckFault> &faults,
                             const std::vector<Word> &data,
                             RoutingMode mode =
                                 RoutingMode::SelfRouting);

/**
 * Build a test set: the identity (covers the straight state of
 * every switch) plus greedily chosen random F members until every
 * switch has also been observed crossed. All members route
 * fault-free by construction.
 */
std::vector<Permutation> faultTestSet(const SelfRoutingBenes &net,
                                      Prng &prng);

/** True iff @p fault changes the output tags of at least one test. */
bool testSetDetects(const SelfRoutingBenes &net,
                    const std::vector<Permutation> &tests,
                    const StuckFault &fault);

/**
 * Localize a single stuck-at fault from the output tags observed
 * when running the test set on the faulty fabric. Returns every
 * fault consistent with the observations (behaviorally equivalent
 * candidates are all reported; empty means the observations match
 * no single-fault hypothesis, e.g.\ the fabric is fault-free or
 * multiply faulty).
 */
std::vector<StuckFault>
diagnoseSingleFault(const SelfRoutingBenes &net,
                    const std::vector<Permutation> &tests,
                    const std::vector<std::vector<Word>> &observed);

} // namespace srbenes

#endif // SRBENES_CORE_FAULTS_HH
