/**
 * @file
 * Compact switch-state serialization.
 *
 * An externally set fabric receives (2n-1) N/2 bits of control
 * state per permutation; deployments precompute and store these
 * (one blob per pattern in a schedule). This module packs a
 * SwitchStates array into the canonical stage-major bit order, one
 * bit per switch, plus a hex rendering for logs and golden files.
 */

#ifndef SRBENES_CORE_STATE_IO_HH
#define SRBENES_CORE_STATE_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/topology.hh"

namespace srbenes
{

/** Bytes needed for one state blob of B(n). */
std::size_t packedStateSize(const BenesTopology &topo);

/** Pack stage-major, LSB-first within each byte. */
std::vector<std::uint8_t> packStates(const BenesTopology &topo,
                                     const SwitchStates &states);

/** Inverse of packStates; fatal()s on a size mismatch. */
SwitchStates unpackStates(const BenesTopology &topo,
                          const std::vector<std::uint8_t> &bytes);

/** Lowercase hex of the packed blob. */
std::string statesToHex(const BenesTopology &topo,
                        const SwitchStates &states);

/** Parse statesToHex output; fatal()s on malformed input. */
SwitchStates statesFromHex(const BenesTopology &topo,
                           const std::string &hex);

} // namespace srbenes

#endif // SRBENES_CORE_STATE_IO_HH
