// srb-lint: modeled — SRB010: concurrency here goes through the
// common/sync.hh shim and is exercised by the srb_model suite.
#include "core/stream.hh"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "core/resilient.hh"

namespace srbenes
{

namespace
{

std::uint64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::size_t
ceilPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

constexpr std::uint64_t
mix64(std::uint64_t x)
{
    // splitmix64 finalizer
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/** How many requests a worker pops from one ring before moving on. */
constexpr unsigned kBurst = 32;

/** Empty ring scans before a worker blocks on its doorbell. */
constexpr unsigned kIdleSpins = 16;

} // namespace

Hash128
hashPermutation128(const Permutation &d)
{
    constexpr unsigned L = 8;
    std::uint64_t a[L], b[L];
    for (unsigned l = 0; l < L; ++l) {
        a[l] = mix64(0x243f6a8885a308d3ULL + l);
        b[l] = mix64(0x13198a2e03707344ULL + l);
    }

    const std::vector<Word> &v = d.dest();
    const std::size_t size = v.size();
    const std::size_t full = size - size % L;
    for (std::size_t i = 0; i < full; i += L) {
        for (unsigned l = 0; l < L; ++l) {
            const std::uint64_t x = v[i + l];
            a[l] = (a[l] ^ x) * 0x9e3779b97f4a7c15ULL;
            a[l] ^= a[l] >> 32;
            b[l] = (b[l] ^ (x + i)) * 0xc2b2ae3d27d4eb4fULL;
            b[l] ^= b[l] >> 29;
        }
    }
    for (std::size_t i = full; i < size; ++i) {
        const unsigned l = i % L;
        a[l] = (a[l] ^ v[i]) * 0x9e3779b97f4a7c15ULL;
        a[l] ^= a[l] >> 32;
        b[l] = (b[l] ^ (v[i] + i)) * 0xc2b2ae3d27d4eb4fULL;
        b[l] ^= b[l] >> 29;
    }

    Hash128 h;
    h.lo = mix64(size);
    h.hi = mix64(~std::uint64_t{size});
    for (unsigned l = 0; l < L; ++l) {
        h.lo = mix64(h.lo ^ a[l]);
        h.hi = mix64(h.hi ^ b[l]);
    }
    return h;
}

StreamEngine::StreamEngine(unsigned n, StreamOptions opts)
    : owned_router_(opts.resilient
                        ? nullptr
                        : std::make_unique<Router>(
                              n, opts.prefer_waksman,
                              opts.shared_cache_capacity,
                              opts.shared_cache_shards, opts.metrics,
                              opts.shared_cache_bytes)),
      router_(opts.resilient ? opts.resilient->router()
                             : *owned_router_),
      resilient_(opts.resilient), opts_(opts)
{
    if (opts_.workers == 0)
        fatal("stream engine needs at least one worker");
    if (opts_.producers == 0)
        fatal("stream engine needs at least one producer");
    if (resilient_ && resilient_->numLines() != (Word{1} << n))
        fatal("resilient router N = %llu does not match engine n %u",
              static_cast<unsigned long long>(resilient_->numLines()),
              n);
    opts_.ring_capacity = ceilPow2(std::max<std::size_t>(
        2, opts_.ring_capacity));
    opts_.local_cache_slots = ceilPow2(std::max<std::size_t>(
        8, opts_.local_cache_slots));
    inline_enabled_ =
        opts_.inline_max_n > 0 && n <= opts_.inline_max_n;

    const std::size_t pairs =
        std::size_t{opts_.producers} * opts_.workers;
    submit_rings_.reserve(pairs);
    result_rings_.reserve(pairs);
    for (std::size_t i = 0; i < pairs; ++i) {
        submit_rings_.push_back(
            std::make_unique<SpscRing<StreamRequest>>(
                opts_.ring_capacity));
        result_rings_.push_back(
            std::make_unique<SpscRing<StreamResult>>(
                opts_.ring_capacity));
    }
    producer_bells_.reserve(opts_.producers);
    for (unsigned p = 0; p < opts_.producers; ++p)
        producer_bells_.push_back(std::make_unique<Doorbell>());

    producers_.resize(opts_.producers);
    for (unsigned p = 0; p < opts_.producers; ++p) {
        producers_[p].eng_ = this;
        producers_[p].index_ = p;
        if (inline_enabled_) {
            producers_[p].table_.resize(opts_.local_cache_slots);
            producers_[p].inline_results_ =
                std::make_unique<SpscRing<StreamResult>>(
                    opts_.ring_capacity);
        }
    }

    workers_.reserve(opts_.workers);
    const std::string inst =
        opts_.metrics ? opts_.metrics->uniqueInstance("stream")
                      : std::string();
    if (opts_.metrics) {
        sheds_ = &opts_.metrics->counter(
            "srbenes_stream_sheds_total", {{"stream", inst}});
        inline_served_ = &opts_.metrics->counter(
            "srbenes_stream_inline_served_total", {{"stream", inst}});
    }
    for (unsigned w = 0; w < opts_.workers; ++w) {
        auto ws = std::make_unique<WorkerState>();
        ws->table.resize(opts_.local_cache_slots);
        if (opts_.metrics) {
            obs::MetricsRegistry &reg = *opts_.metrics;
            const obs::Labels labels = {{"stream", inst},
                                        {"worker", std::to_string(w)}};
            ws->requests = &reg.counter(
                "srbenes_stream_requests_total", labels);
            ws->local_hits = &reg.counter(
                "srbenes_stream_local_hits_total", labels);
            ws->shared_lookups = &reg.counter(
                "srbenes_stream_shared_lookups_total", labels);
            ws->doorbell_wakes = &reg.counter(
                "srbenes_stream_doorbell_wakes_total", labels);
            ws->deadline_expired = &reg.counter(
                "srbenes_stream_deadline_expired_total", labels);
            ws->degraded = &reg.counter(
                "srbenes_stream_degraded_serves_total", labels);
            ws->route_failures = &reg.counter(
                "srbenes_stream_route_failures_total", labels);
            ws->queue_depth = &reg.gauge(
                "srbenes_stream_queue_depth", labels);
            ws->latency_ns = &reg.histogram(
                "srbenes_stream_latency_ns", labels);
        }
        workers_.push_back(std::move(ws));
    }
}

StreamEngine::~StreamEngine()
{
    if (life_.started() && !life_.stopped())
        stop();
}

StreamEngine::Producer &
StreamEngine::producer(unsigned i)
{
    if (i >= producers_.size())
        fatal("producer index %u out of range (%zu handles)", i,
              producers_.size());
    return producers_[i];
}

bool
StreamEngine::Producer::trySubmit(std::uint64_t id,
                                  std::shared_ptr<const Permutation> perm,
                                  std::vector<Word> &payload)
{
    const std::uint64_t deadline =
        eng_->opts_.default_deadline_ns == 0
            ? 0
            : nowNs() + eng_->opts_.default_deadline_ns;
    return trySubmit(id, std::move(perm), payload, deadline);
}

bool
StreamEngine::Producer::trySubmit(std::uint64_t id,
                                  std::shared_ptr<const Permutation> perm,
                                  std::vector<Word> &payload,
                                  std::uint64_t deadline_ns)
{
    StreamEngine &eng = *eng_;
    if (perm->size() != eng.numLines())
        fatal("stream request permutation size %zu != N = %llu",
              perm->size(),
              static_cast<unsigned long long>(eng.numLines()));
    if (payload.size() != perm->size())
        fatal("stream request payload size %zu != N = %zu",
              payload.size(), perm->size());

    if (eng.inline_enabled_) {
        // Small-N inline path: a ring round-trip costs more than the
        // route itself, so do the work right here. The full check
        // comes FIRST so a shed leaves @p payload untouched, exactly
        // like a refused ring push.
        if (inline_results_->full()) {
            if (eng.sheds_)
                eng.sheds_->inc();
            return false;
        }
        StreamRequest req;
        req.id = id;
        req.producer = index_;
        req.hash = memoizedHash(perm);
        req.perm = std::move(perm);
        req.payload = std::move(payload);
        // Counters still attribute to the affine worker (its
        // instruments are thread-sharded, so cross-thread increments
        // are safe); the plan table and scratch are this handle's.
        const unsigned w =
            static_cast<unsigned>(req.hash.hi % eng.opts_.workers);
        req.submit_ns = nowNs();
        req.deadline_ns = deadline_ns;
        StreamResult res;
        eng.serve(*eng.workers_[w], w, req, res, table_, op_,
                  scratch_);
        // Cannot fail: full() was false above and this handle is the
        // queue's only pusher.
        if (!inline_results_->tryPush(std::move(res)))
            fatal("inline result queue overflow");
        ++submitted_;
        if (eng.inline_served_)
            eng.inline_served_->inc();
        return true;
    }

    StreamRequest req;
    req.id = id;
    req.producer = index_;
    req.hash = memoizedHash(perm);
    req.perm = std::move(perm);
    req.payload = std::move(payload);

    // Pattern-affine dispatch: the same permutation always reaches
    // the same worker, so local plan caches never duplicate entries.
    const unsigned w =
        static_cast<unsigned>(req.hash.hi % eng.opts_.workers);
    req.submit_ns = nowNs();
    req.deadline_ns = deadline_ns;
    if (!eng.submitRing(index_, w).tryPush(std::move(req))) {
        // Affine ring full: spill once to the next worker before
        // shedding. The spill target misses locally and pulls the
        // plan from the shared tier — the cross-worker shared hit
        // that load-balances a burst.
        const unsigned K = eng.opts_.workers;
        const unsigned spill = (w + 1) % K;
        if (K > 1 &&
            eng.submitRing(index_, spill).tryPush(std::move(req))) {
            ++submitted_;
            eng.workers_[spill]->bell.ring();
            return true;
        }
        payload = std::move(req.payload); // hand the storage back
        if (eng.sheds_)
            eng.sheds_->inc();
        return false;
    }
    ++submitted_;
    eng.workers_[w]->bell.ring();
    return true;
}

const Hash128 &
StreamEngine::Producer::memoizedHash(
    const std::shared_ptr<const Permutation> &perm)
{
    // Direct-mapped by pointer identity. The slot's shared_ptr keeps
    // the memoized pattern alive, so a matching address is always
    // the same object; replacing a slot drops the old reference.
    MemoSlot &slot =
        memo_[mix64(reinterpret_cast<std::uintptr_t>(perm.get())) %
              kMemoSlots];
    if (slot.perm.get() != perm.get()) {
        slot.hash = hashPermutation128(*perm);
        slot.perm = perm;
    }
    return slot.hash;
}

bool
StreamEngine::Producer::tryPoll(StreamResult &out)
{
    StreamEngine &eng = *eng_;
    if (inline_results_ && inline_results_->tryPop(out)) {
        ++received_;
        return true;
    }
    const unsigned K = eng.opts_.workers;
    for (unsigned i = 0; i < K; ++i) {
        const unsigned w = (poll_rr_ + i) % K;
        if (eng.resultRing(index_, w).tryPop(out)) {
            poll_rr_ = (w + 1) % K;
            ++received_;
            // The pop freed result-ring space; a worker may be
            // blocked on it.
            eng.workers_[w]->bell.ring();
            return true;
        }
    }
    return false;
}

void
StreamEngine::Producer::awaitResult(StreamResult &out)
{
    StreamEngine &eng = *eng_;
    while (!tryPoll(out)) {
        eng.producer_bells_[index_]->waitUntil([&] {
            for (unsigned w = 0; w < eng.opts_.workers; ++w)
                if (!eng.resultRing(index_, w).empty())
                    return true;
            return false;
        });
    }
}

bool
StreamEngine::Producer::awaitResultFor(StreamResult &out,
                                       std::uint64_t timeout_ns)
{
    StreamEngine &eng = *eng_;
    const std::uint64_t deadline = nowNs() + timeout_ns;
    while (!tryPoll(out)) {
        const bool ready = eng.producer_bells_[index_]->waitUntilFor(
            [&] {
                for (unsigned w = 0; w < eng.opts_.workers; ++w)
                    if (!eng.resultRing(index_, w).empty())
                        return true;
                return false;
            },
            deadline);
        // The handle is single-threaded: only this thread pops its
        // result rings, so a true predicate cannot be stolen.
        if (!ready)
            return tryPoll(out);
    }
    return true;
}

void
StreamEngine::Producer::drain(
    const std::function<void(StreamResult &&)> &sink)
{
    StreamResult res;
    while (inFlight() > 0) {
        awaitResult(res);
        sink(std::move(res));
    }
}

const RoutePlan *
StreamEngine::lookupPlan(WorkerState &ws, const StreamRequest &req)
{
    return lookupIn(ws.table, ws.op, ws, req);
}

const RoutePlan *
StreamEngine::lookupIn(std::vector<LocalSlot> &table,
                       std::uint64_t &op, WorkerState &ws,
                       const StreamRequest &req)
{
    const std::size_t mask = table.size() - 1;
    const std::size_t base = req.hash.lo & mask;
    constexpr std::size_t kProbe = 4;

    ++op;
    for (std::size_t i = 0; i < kProbe; ++i) {
        LocalSlot &slot = table[(base + i) & mask];
        if (slot.plan && slot.hash == req.hash &&
            (!opts_.verify_local_hits ||
             slot.plan->perm == *req.perm)) {
            slot.stamp = op;
            if (ws.local_hits)
                ws.local_hits->inc();
            return slot.plan.get();
        }
    }

    // Local miss: shared sharded tier (plans if genuinely new),
    // then adopt into the probe window, evicting the stalest slot.
    if (ws.shared_lookups)
        ws.shared_lookups->inc();
    std::shared_ptr<const RoutePlan> plan =
        router_.planCached(*req.perm);
    LocalSlot *victim = &table[base];
    for (std::size_t i = 0; i < kProbe; ++i) {
        LocalSlot &slot = table[(base + i) & mask];
        if (!slot.plan) {
            victim = &slot;
            break;
        }
        if (slot.stamp < victim->stamp)
            victim = &slot;
    }
    victim->hash = req.hash;
    victim->plan = std::move(plan);
    victim->stamp = op;
    return victim->plan.get();
}

void
StreamEngine::serve(WorkerState &ws, unsigned w, StreamRequest &req,
                    StreamResult &res,
                    std::vector<LocalSlot> &table, std::uint64_t &op,
                    std::vector<Word> &scratch)
{
    res.id = req.id;
    res.worker = w;
    res.submit_ns = req.submit_ns;

    if (req.deadline_ns != 0 && nowNs() >= req.deadline_ns) {
        // Expired while queued: hand the payload back unrouted.
        res.status = RouteErrc::DeadlineExceeded;
        res.tier = ServeTier::Failed;
        res.payload = std::move(req.payload);
        if (ws.deadline_expired)
            ws.deadline_expired->inc();
    } else if (resilient_) {
        // Degraded-capable serving: the resilient router verifies
        // every pass by output tags and reports the tier that won.
        RouteOutcome out = resilient_->route(*req.perm, req.payload,
                                             req.deadline_ns);
        if (out) {
            res.tier = out.tier();
            res.payload = out.takeValue();
            if (res.tier != ServeTier::Primary && ws.degraded)
                ws.degraded->inc();
        } else {
            res.status = out.errc();
            res.tier = ServeTier::Failed;
            res.payload = std::move(req.payload);
            if (out.errc() == RouteErrc::DeadlineExceeded) {
                if (ws.deadline_expired)
                    ws.deadline_expired->inc();
            } else if (ws.route_failures) {
                ws.route_failures->inc();
            }
        }
    } else {
        const RoutePlan *plan = lookupIn(table, op, ws, req);

        // Gather into the caller's scratch, then swap storage with
        // the request payload: steady state allocates nothing.
        router_.engine().executeInto(*plan->fast, req.payload,
                                     scratch);
        scratch.swap(req.payload);
        res.payload = std::move(req.payload);
    }
    res.complete_ns = nowNs();

    if (ws.requests)
        ws.requests->inc();
    if (ws.latency_ns)
        ws.latency_ns->observe(res.latencyNs());
}

void
StreamEngine::process(WorkerState &ws, unsigned w, StreamRequest &req)
{
    StreamResult res;
    serve(ws, w, req, res, ws.table, ws.op, ws.scratch);

    SpscRing<StreamResult> &ring = resultRing(req.producer, w);
    if (!ring.tryPush(std::move(res))) {
        // Backpressure: block until the producer drains (it rings
        // this worker's bell on every pop). The contract stands:
        // producers must keep polling.
        do {
            ws.bell.waitUntil([&] { return !ring.full(); });
            if (ws.doorbell_wakes)
                ws.doorbell_wakes->inc();
        } while (!ring.tryPush(std::move(res)));
    }
    producer_bells_[req.producer]->ring();
    if (opts_.result_notify)
        opts_.result_notify(req.producer);
}

void
StreamEngine::workerMain(unsigned w)
{
    WorkerState &ws = *workers_[w];
    const unsigned P = opts_.producers;
    unsigned idle = 0;
    StreamRequest req;

    for (;;) {
        bool any = false;
        std::uint64_t depth = 0;
        for (unsigned p = 0; p < P; ++p) {
            SpscRing<StreamRequest> &ring = submitRing(p, w);
            depth += ring.size();
            for (unsigned burst = 0;
                 burst < kBurst && ring.tryPop(req); ++burst) {
                process(ws, w, req);
                any = true;
            }
        }
        if (ws.queue_depth)
            ws.queue_depth->set(static_cast<std::int64_t>(depth));
        if (any) {
            idle = 0;
            continue;
        }
        // order: acquire pairs with stop()'s release store, so
        // every request submitted before stop() is visible to the
        // drain check below.
        if (stop_requested_.load(std::memory_order_acquire)) {
            bool drained = true;
            for (unsigned p = 0; p < P && drained; ++p)
                drained = submitRing(p, w).empty();
            if (drained)
                return;
            continue;
        }
        if (++idle < kIdleSpins)
            continue;
        idle = 0;
        ws.bell.waitUntil([&] {
            // order: acquire; see the drain check above.
            if (stop_requested_.load(std::memory_order_acquire))
                return true;
            for (unsigned p = 0; p < P; ++p)
                if (!submitRing(p, w).empty())
                    return true;
            return false;
        });
        if (ws.doorbell_wakes)
            ws.doorbell_wakes->inc();
    }
}

void
StreamEngine::start()
{
    if (life_.started())
        fatal("stream engine started twice");
    // Stamp-then-flag publication: a stats() that observes
    // started() == true sees this start stamp (LifecycleStamps).
    life_.markStarted(nowNs());
    threads_.reserve(opts_.workers);
    for (unsigned w = 0; w < opts_.workers; ++w)
        threads_.emplace_back([this, w] { workerMain(w); });
}

void
StreamEngine::stop()
{
    if (!life_.started() || life_.stopped())
        return;
    // order: release so work published before stop() is visible
    // to workers that observe the flag; pairs with their acquires.
    stop_requested_.store(true, std::memory_order_release);
    for (auto &ws : workers_)
        ws->bell.ring();
    for (std::thread &t : threads_)
        t.join();
    threads_.clear();
    // Stamp-then-flag publication: a stats() that observes
    // stopped() == true reads the final stop stamp, never a stale
    // or torn one (LifecycleStamps).
    life_.markStopped(nowNs());
}

void
StreamEngine::resetStats()
{
    // Quiescence (see the header contract) makes this race-free:
    // idle workers never touch their instruments.
    for (auto &ws : workers_) {
        if (ws->requests)
            ws->requests->reset();
        if (ws->local_hits)
            ws->local_hits->reset();
        if (ws->shared_lookups)
            ws->shared_lookups->reset();
        if (ws->doorbell_wakes)
            ws->doorbell_wakes->reset();
        if (ws->deadline_expired)
            ws->deadline_expired->reset();
        if (ws->degraded)
            ws->degraded->reset();
        if (ws->route_failures)
            ws->route_failures->reset();
        if (ws->latency_ns)
            ws->latency_ns->reset();
    }
    if (sheds_)
        sheds_->reset();
    if (inline_served_)
        inline_served_->reset();
    // A stats() racing with the epoch restart sees either the old
    // or the new start — both are coherent windows.
    life_.restartClock(nowNs());
}

StreamStats
StreamEngine::stats() const
{
    StreamStats st;
    obs::Histogram::Snapshot lat;
    for (const auto &ws : workers_) {
        if (ws->requests)
            st.requests += ws->requests->value();
        if (ws->local_hits)
            st.local_hits += ws->local_hits->value();
        if (ws->shared_lookups)
            st.shared_lookups += ws->shared_lookups->value();
        if (ws->doorbell_wakes)
            st.doorbell_wakes += ws->doorbell_wakes->value();
        if (ws->deadline_expired)
            st.deadline_expired += ws->deadline_expired->value();
        if (ws->degraded)
            st.degraded += ws->degraded->value();
        if (ws->route_failures)
            st.route_failures += ws->route_failures->value();
        if (ws->latency_ns)
            lat.merge(ws->latency_ns->snapshot());
    }
    if (sheds_)
        st.sheds = sheds_->value();
    if (inline_served_)
        st.inline_served = inline_served_->value();
    st.payload_words = st.requests * numLines();

    // The acquire flag reads certify the stamps they published
    // (LifecycleStamps' stamp-before-flag protocol).
    const bool stopped = life_.stopped();
    const std::uint64_t end = stopped ? life_.stopNs() : nowNs();
    const std::uint64_t begin = life_.startNs();
    if (life_.started() && end > begin)
        st.elapsed_sec = (end - begin) * 1e-9;
    if (st.elapsed_sec > 0) {
        st.perms_per_sec = st.requests / st.elapsed_sec;
        st.payload_gb_per_sec =
            st.payload_words * 8.0 / st.elapsed_sec / 1e9;
    }

    if (lat.count() > 0) {
        st.p50_ns = lat.quantile(0.50);
        st.p99_ns = lat.quantile(0.99);
    }

    st.shared_shards = router_.cacheStats();
    return st;
}

} // namespace srbenes
