#include "core/half_network.hh"

#include "common/logging.hh"

namespace srbenes
{

namespace
{

/**
 * Push line positions through stages [lo, hi] of the fabric;
 * @p trailing_boundary includes the wiring after stage hi.
 */
Permutation
spanMapping(const BenesTopology &topo, const SwitchStates &states,
            unsigned lo, unsigned hi, bool trailing_boundary)
{
    if (states.size() != topo.numStages())
        fatal("state array has %zu stages, network has %u",
              states.size(), topo.numStages());
    const Word size = topo.numLines();

    std::vector<Word> cur(size), next(size);
    for (Word i = 0; i < size; ++i)
        cur[i] = i; // cur[line] = origin

    for (unsigned s = lo; s <= hi; ++s) {
        for (Word i = 0; i < topo.switchesPerStage(); ++i)
            if (states[s][i])
                std::swap(cur[2 * i], cur[2 * i + 1]);
        const bool apply = (s < hi) || trailing_boundary;
        if (apply && s + 1 < topo.numStages()) {
            for (Word line = 0; line < size; ++line)
                next[topo.wireToNext(s, line)] = cur[line];
            cur.swap(next);
        }
    }

    std::vector<Word> mapping(size);
    for (Word line = 0; line < size; ++line)
        mapping[cur[line]] = line;
    return Permutation(std::move(mapping));
}

} // namespace

Permutation
firstHalfMapping(const BenesTopology &topo, const SwitchStates &states)
{
    return spanMapping(topo, states, 0, topo.n() - 1, true);
}

Permutation
omegaHalfMapping(const BenesTopology &topo, const SwitchStates &states)
{
    return spanMapping(topo, states, topo.n() - 1,
                       topo.numStages() - 1, false);
}

Permutation
tailMapping(const BenesTopology &topo, const SwitchStates &states)
{
    if (topo.n() == 1) // single stage: the tail is empty
        return Permutation::identity(topo.numLines());
    return spanMapping(topo, states, topo.n(),
                       topo.numStages() - 1, false);
}

} // namespace srbenes
