/**
 * @file
 * Runtime-dispatched SIMD kernels for the FastEngine hot loops: the
 * per-stage bit-plane delta swap, the final payload gather, and the
 * tag-to-bit-plane transposition that seeds every cold plan.
 *
 * One binary serves any x86-64 host: scalar bodies are always
 * compiled, AVX2 and AVX-512 bodies are compiled with per-function
 * target attributes and selected at startup via cpuid
 * (__builtin_cpu_supports). The active implementation sits behind a
 * function-pointer table so the choice costs one indirect call per
 * stage / per payload vector, not per word.
 *
 * Dispatch can be overridden two ways:
 *
 *  - the SRBENES_DISABLE_SIMD environment variable (any value other
 *    than empty or "0") pins the scalar table — CI uses this to
 *    exercise the fallback on AVX hosts;
 *  - setSimdLevel() pins an explicit level at runtime — the
 *    differential tests use this to run the same route through every
 *    compiled-in kernel and compare bit-for-bit.
 *
 * Non-x86 builds (or compilers without the target attribute) compile
 * the scalar table only; detection then always answers Scalar.
 */

#ifndef SRBENES_CORE_FAST_KERNELS_HH
#define SRBENES_CORE_FAST_KERNELS_HH

#include "common/bitops.hh"

namespace srbenes
{

enum class SimdLevel
{
    Scalar, //!< portable word-at-a-time loops
    Avx2,   //!< 256-bit: 4 lanes per op, vpgatherqq payload gather
    Avx512, //!< 512-bit: 8 lanes per op, masked tails
};

const char *simdLevelName(SimdLevel level);

/**
 * The dispatched operations. All three treat `planes` as `nplanes`
 * bit-plane rows of `words` 64-bit words each, row r starting at
 * `planes + r * stride`.
 */
struct KernelTable
{
    /**
     * Payload gather: out[j] = in[src[j]] for j in [0, count).
     * `out` must not alias `in`.
     */
    void (*gather)(Word *out, const Word *in, const Word *src,
                   Word count);

    /**
     * In-word conditional exchange at distance `dist` (1 <= dist <=
     * 32, a power of two): for every plane row and word w,
     *     t = (P[w] ^ (P[w] >> dist)) & ctrl[w];
     *     P[w] ^= t ^ (t << dist);
     */
    void (*deltaSwap)(Word *planes, unsigned nplanes, Word stride,
                      const Word *ctrl, Word words, unsigned dist);

    /**
     * Cross-word conditional exchange at distance `dw` words (a power
     * of two): for every plane row and every word w with (w & dw) == 0,
     *     t = (P[w] ^ P[w + dw]) & ctrl[w];
     *     P[w] ^= t; P[w + dw] ^= t;
     */
    void (*pairSwap)(Word *planes, unsigned nplanes, Word stride,
                     const Word *ctrl, Word words, Word dw);

    /**
     * Bit-plane transposition of destination tags: for every lane
     * j in [0, count) and plane b in [0, nplanes),
     *     bit j of row b  =  bit b of tags[j].
     * Each of the `nplanes` rows receives exactly ceil(count / 64)
     * words, tail bits zero; words beyond that are left untouched.
     * Implemented as independent 64x64 bit-matrix transposes (one
     * per 64-lane block), so cost is O(count * log 64 / 64) word ops
     * instead of the O(count * nplanes) scalar read-modify-writes.
     */
    void (*packTags)(Word *planes, unsigned nplanes, Word stride,
                     const Word *tags, Word count);

    const char *name;
};

/** True iff this binary carries kernels for @p level at all. */
bool simdLevelCompiled(SimdLevel level);

/** True iff @p level is compiled in AND this host's cpuid allows it. */
bool simdLevelSupported(SimdLevel level);

/**
 * The level startup dispatch would pick right now: the best
 * supported level, or Scalar when SRBENES_DISABLE_SIMD is set.
 * Re-reads the environment on every call (cheap; used at init and in
 * tests).
 */
SimdLevel detectSimdLevel();

/** The table behind the level; fatal()s if unsupported on this host. */
const KernelTable &kernelsFor(SimdLevel level);

/** The currently active table (detection runs on first use). */
const KernelTable &activeKernels();

/** The level of the currently active table. */
SimdLevel activeSimdLevel();

/**
 * Pin the active table to @p level (fatal()s if unsupported). Not a
 * hot-path call: intended for tests and benchmark setup, before
 * worker threads start.
 */
void setSimdLevel(SimdLevel level);

} // namespace srbenes

#endif // SRBENES_CORE_FAST_KERNELS_HH
