// srb-lint: modeled — SRB010: concurrency here goes through the
// common/sync.hh shim and is exercised by the srb_model suite.
/**
 * @file
 * Recency stamps for LRU-style caches: the lock-free half of the
 * Router plan cache's eviction policy, extracted so the srb_model
 * suite can check it in isolation.
 *
 * A RecencyClock is a global monotone tick source; every cache entry
 * carries a RecencyStamp that hits touch() on the read path without
 * taking the shard's writer lock. The eviction scan (under the
 * writer lock) compares raw stamp values, so the properties that
 * matter — and that the model suite pins — are:
 *
 *  - ticks are unique and strictly increasing across threads (the
 *    fetch_add is atomic; two hits never share a tick);
 *  - a touch() is never torn: an eviction scan racing with hits
 *    reads either the old or the new stamp, both valid ticks.
 *
 * Everything here is relaxed on purpose: stamps order nothing but
 * themselves, and the entry contents they protect are published by
 * the shard lock, not by the stamp.
 */

#ifndef SRBENES_CORE_CACHE_RECENCY_HH
#define SRBENES_CORE_CACHE_RECENCY_HH

#include <atomic>
#include <cstdint>

#include "common/sync.hh"

namespace srbenes
{

/** Monotone tick source shared by every stamp of one cache. */
class RecencyClock
{
  public:
    /** The next tick, unique across threads, strictly positive. */
    std::uint64_t
    next() const
    {
        // order: relaxed; ticks only need atomicity and
        // monotonicity, they are not a synchronization edge.
        return tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /** Ticks handed out so far (telemetry / tests). */
    std::uint64_t
    issued() const
    {
        // order: relaxed; statistical snapshot.
        return tick_.load(std::memory_order_relaxed);
    }

  private:
    mutable sync::Atomic<std::uint64_t> tick_{0};
};

/** One entry's last-used tick, touched lock-free on the hit path. */
class RecencyStamp
{
  public:
    explicit RecencyStamp(std::uint64_t t) : last_used_(t) {}

    /** Stamp this entry with a fresh tick from @p clock. */
    void
    touch(const RecencyClock &clock)
    {
        // order: relaxed; see RecencyClock::next().
        last_used_.store(clock.next(), std::memory_order_relaxed);
    }

    /** Overwrite with a caller-obtained tick (the insert path
     *  stamps entries with a tick drawn before the writer lock). */
    void
    stamp(std::uint64_t t)
    {
        // order: relaxed; see touch().
        last_used_.store(t, std::memory_order_relaxed);
    }

    /** The stamp as the eviction scan reads it. */
    std::uint64_t
    value() const
    {
        // order: relaxed; the scan tolerates racing touches — it
        // reads a valid (old or new) tick either way.
        return last_used_.load(std::memory_order_relaxed);
    }

  private:
    sync::Atomic<std::uint64_t> last_used_;
};

} // namespace srbenes

#endif // SRBENES_CORE_CACHE_RECENCY_HH
