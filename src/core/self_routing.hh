/**
 * @file
 * The self-routing Benes network (Sections I and II of the paper).
 *
 * Every input carries an n-bit destination tag. A switch in stage b
 * or stage 2n-2-b examines bit b of the tag on its UPPER input: bit 0
 * puts the switch in state 0 (straight), bit 1 in state 1 (crossed),
 * Fig. 3. The permutation D succeeds exactly when D is in F(n)
 * (Theorem 1); a failure is visible as some output receiving the
 * wrong tag (Fig. 5).
 *
 * Supported operating modes:
 *  - SelfRouting: the scheme above (class F);
 *  - OmegaBit:    switches in stages 0 .. n-2 are forced to state 0
 *                 (the paper's extra "omega" control bit), making all
 *                 of Lawrie's Omega(n) permutations routable;
 *  - external setup: self-setting logic disabled, switch states
 *                 supplied by the caller (e.g.\ WaksmanSetup), so the
 *                 fabric realizes all N! permutations.
 */

#ifndef SRBENES_CORE_SELF_ROUTING_HH
#define SRBENES_CORE_SELF_ROUTING_HH

#include <optional>
#include <vector>

#include "core/topology.hh"
#include "perm/permutation.hh"

namespace srbenes
{

/** How the switches obtain their states during a route. */
enum class RoutingMode
{
    SelfRouting, //!< Fig. 3 destination-tag rule on every stage.
    OmegaBit,    //!< Stages 0 .. n-2 forced straight; rest self-set.
};

/** Everything observable from one pass through the fabric. */
struct RouteResult
{
    /** True iff every input signal reached its tagged destination. */
    bool success = false;
    /** Tag observed at each output terminal. */
    std::vector<Word> output_tags;
    /** Output terminal reached by each input's signal. */
    std::vector<Word> realized_dest;
    /** The switch states used, [stage][switch]. */
    SwitchStates states;
    /** Output terminals whose tag differs from their index. */
    std::vector<Word> misrouted_outputs;
    /** Stage count = gate-delay units through the fabric. */
    unsigned gate_delay = 0;
};

/**
 * Optional capture of the tag vector at the input of every stage plus
 * the final outputs (2n snapshots); drives the Fig. 4 rendering.
 */
struct RouteTrace
{
    std::vector<std::vector<Word>> tags_at_stage;
};

class SelfRoutingBenes
{
  public:
    explicit SelfRoutingBenes(unsigned n);

    const BenesTopology &topology() const { return topo_; }
    unsigned n() const { return topo_.n(); }
    Word numLines() const { return topo_.numLines(); }

    /**
     * Route the permutation @p d (input i tagged with destination
     * d[i]) with dynamically self-set switches.
     */
    RouteResult route(const Permutation &d,
                      RoutingMode mode = RoutingMode::SelfRouting,
                      RouteTrace *trace = nullptr) const;

    /**
     * As route(), but reusing the capacity of a caller-held result
     * (and a thread_local signal arena) instead of allocating: a
     * steady-state caller that keeps its RouteResult across calls
     * routes without touching the heap. route() and
     * permutePayloads() are thin wrappers over this.
     */
    void routeInto(const Permutation &d, RouteResult &res,
                   RoutingMode mode = RoutingMode::SelfRouting,
                   RouteTrace *trace = nullptr) const;

    /**
     * Route with the self-setting logic disabled and the switch
     * states supplied externally (Waksman setup path). The tags are
     * still carried through so the result can be verified.
     */
    RouteResult routeWithStates(const Permutation &d,
                                const SwitchStates &states,
                                RouteTrace *trace = nullptr) const;

    /**
     * Permute a payload vector through the fabric; returns the
     * payloads in output order if the route succeeded, std::nullopt
     * otherwise.
     */
    std::optional<std::vector<Word>>
    permutePayloads(const Permutation &d, const std::vector<Word> &data,
                    RoutingMode mode = RoutingMode::SelfRouting) const;

  private:
    void runInto(const Permutation &d, const SwitchStates *forced,
                 RoutingMode mode, RouteTrace *trace,
                 RouteResult &res) const;

    BenesTopology topo_;
};

} // namespace srbenes

#endif // SRBENES_CORE_SELF_ROUTING_HH
