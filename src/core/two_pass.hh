/**
 * @file
 * Two-pass universal routing on the self-routing fabric.
 *
 * Section II observes that the first n stages of B(n) form an
 * inverse omega network and the last n stages an omega network. Any
 * permutation D therefore factors as D = P1 o P2 with P1 in
 * InverseOmega(n) and P2 in Omega(n). P1 is the signal's line at the
 * middle stage in the RECURSIVE numbering of B(n): bit l of P1_i is
 * the upper/lower decision the Waksman looping algorithm makes for
 * input i at recursion level l, and the top bit is its port at the
 * final B(1). That labeling separates every input pair and every
 * output pair at all granularities, which is exactly Lawrie's pair
 * of window conditions. Since InverseOmega(n) is inside F(n)
 * (Theorem 3) and Omega(n) permutations route with the omega bit,
 * BOTH factors run on the self-routing network -- two passes
 * through the fabric realize ALL N! permutations.
 *
 * Computing the factorization costs one looping pass (O(N log N),
 * the Waksman cost); the payoff over single-pass external routing is
 * operational: the fabric never needs its self-setting logic
 * disabled or its (2n-1) N/2 switch states loaded -- each pass is
 * driven by the N-word destination-tag vector alone.
 */

#ifndef SRBENES_CORE_TWO_PASS_HH
#define SRBENES_CORE_TWO_PASS_HH

#include <cstdint>

#include "core/self_routing.hh"

namespace srbenes
{

/** The factorization D = first.then(second). */
struct TwoPassPlan
{
    Permutation first;  //!< InverseOmega(n) member; pass 1, self mode
    Permutation second; //!< Omega(n) member; pass 2, omega-bit mode
};

/**
 * Factor @p d into an inverse-omega and an omega permutation by
 * splitting a Waksman-routed pass through @p net at the middle
 * stage. Valid for every permutation of N = 2^n elements.
 */
TwoPassPlan twoPassPlan(const SelfRoutingBenes &net,
                        const Permutation &d);

/**
 * twoPassPlan with the looping algorithm's free loop colorings
 * drawn from @p seed: every seed yields a valid factorization
 * (first in InverseOmega, second in Omega, composition == d), and
 * different seeds generally yield different factors — so the two
 * passes exercise DIFFERENT switch states on the fabric. Seed 0 is
 * canonical (identical to twoPassPlan). The degraded-mode TwoPass
 * tier samples seeds hunting for a factorization whose two
 * tag-driven passes both verify on a faulty fabric.
 */
TwoPassPlan twoPassPlanSeeded(const SelfRoutingBenes &net,
                              const Permutation &d,
                              std::uint64_t seed);

/**
 * Execute the plan: pass 1 self-routed, pass 2 with the omega bit.
 * Returns the payloads in output order; panics if either pass fails
 * (the plan guarantees both must succeed).
 */
std::vector<Word> twoPassPermute(const SelfRoutingBenes &net,
                                 const TwoPassPlan &plan,
                                 const std::vector<Word> &data);

} // namespace srbenes

#endif // SRBENES_CORE_TWO_PASS_HH
