#include "core/state_io.hh"

#include "common/logging.hh"

namespace srbenes
{

std::size_t
packedStateSize(const BenesTopology &topo)
{
    return (topo.numSwitches() + 7) / 8;
}

std::vector<std::uint8_t>
packStates(const BenesTopology &topo, const SwitchStates &states)
{
    if (states.size() != topo.numStages())
        fatal("state array has %zu stages, network has %u",
              states.size(), topo.numStages());

    std::vector<std::uint8_t> bytes(packedStateSize(topo), 0);
    std::size_t bit_idx = 0;
    for (unsigned s = 0; s < topo.numStages(); ++s) {
        if (states[s].size() != topo.switchesPerStage())
            fatal("stage %u has %zu switches, expected %llu", s,
                  states[s].size(),
                  static_cast<unsigned long long>(
                      topo.switchesPerStage()));
        for (Word i = 0; i < topo.switchesPerStage(); ++i) {
            if (states[s][i])
                bytes[bit_idx / 8] |= std::uint8_t(1u << (bit_idx % 8));
            ++bit_idx;
        }
    }
    return bytes;
}

SwitchStates
unpackStates(const BenesTopology &topo,
             const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() != packedStateSize(topo))
        fatal("packed blob is %zu bytes, expected %zu", bytes.size(),
              packedStateSize(topo));

    SwitchStates states = topo.makeStates();
    std::size_t bit_idx = 0;
    for (unsigned s = 0; s < topo.numStages(); ++s) {
        for (Word i = 0; i < topo.switchesPerStage(); ++i) {
            states[s][i] = static_cast<std::uint8_t>(
                (bytes[bit_idx / 8] >> (bit_idx % 8)) & 1);
            ++bit_idx;
        }
    }
    // Bits past numSwitches() in the final byte must be zero.
    for (std::size_t tail = bit_idx; tail < bytes.size() * 8;
         ++tail) {
        if ((bytes[tail / 8] >> (tail % 8)) & 1)
            fatal("nonzero padding bit in packed state blob");
    }
    return states;
}

std::string
statesToHex(const BenesTopology &topo, const SwitchStates &states)
{
    static const char *digits = "0123456789abcdef";
    std::string hex;
    for (std::uint8_t b : packStates(topo, states)) {
        hex += digits[b >> 4];
        hex += digits[b & 0xf];
    }
    return hex;
}

SwitchStates
statesFromHex(const BenesTopology &topo, const std::string &hex)
{
    if (hex.size() != 2 * packedStateSize(topo))
        fatal("hex state blob has %zu digits, expected %zu",
              hex.size(), 2 * packedStateSize(topo));
    auto nibble = [](char c) -> unsigned {
        if (c >= '0' && c <= '9')
            return static_cast<unsigned>(c - '0');
        if (c >= 'a' && c <= 'f')
            return static_cast<unsigned>(c - 'a' + 10);
        fatal("bad hex digit '%c' in state blob", c);
    };
    std::vector<std::uint8_t> bytes(hex.size() / 2);
    for (std::size_t k = 0; k < bytes.size(); ++k)
        bytes[k] = static_cast<std::uint8_t>(
            (nibble(hex[2 * k]) << 4) | nibble(hex[2 * k + 1]));
    return unpackStates(topo, bytes);
}

} // namespace srbenes
