#include "core/pipeline.hh"

#include "common/logging.hh"

namespace srbenes
{

PipelinedBenes::PipelinedBenes(unsigned n,
                               obs::MetricsRegistry *metrics)
    : topo_(n), regs_(topo_.numStages(), Frame(topo_.numLines())),
      full_(topo_.numStages(), 0)
{
    if (metrics) {
        const std::string inst = metrics->uniqueInstance("pipeline");
        ticks_ = &metrics->counter("srbenes_pipeline_ticks_total",
                                   {{"pipeline", inst}});
        injects_ = &metrics->counter("srbenes_pipeline_injects_total",
                                     {{"pipeline", inst}});
        emerges_ = &metrics->counter("srbenes_pipeline_emerges_total",
                                     {{"pipeline", inst}});
        in_flight_ = &metrics->gauge("srbenes_pipeline_in_flight",
                                     {{"pipeline", inst}});
        drain_depth_ = &metrics->histogram(
            "srbenes_pipeline_drain_depth", {{"pipeline", inst}});
    }
}

std::uint64_t
PipelinedBenes::inFlight() const
{
    std::uint64_t depth = pending_.size();
    for (std::uint8_t f : full_)
        depth += f;
    return depth;
}

void
PipelinedBenes::inject(const Permutation &d, std::vector<Word> payloads)
{
    if (d.size() != topo_.numLines())
        fatal("pipeline vector size %zu != N = %llu", d.size(),
              static_cast<unsigned long long>(topo_.numLines()));
    if (payloads.size() != d.size())
        fatal("payload count %zu != N = %zu", payloads.size(), d.size());

    Frame frame;
    if (!spare_.empty()) {
        frame = std::move(spare_.back());
        spare_.pop_back();
    }
    frame.resize(d.size());
    for (std::size_t i = 0; i < d.size(); ++i)
        frame[i] = Signal{d[i], payloads[i]};
    pending_.push_back(std::move(frame));
    if (injects_) {
        injects_->inc();
        in_flight_->set(static_cast<std::int64_t>(inFlight()));
    }
}

void
PipelinedBenes::exchange(Frame &frame, unsigned s) const
{
    const unsigned b = topo_.controlBit(s);
    for (Word i = 0; i < topo_.switchesPerStage(); ++i)
        if (bit(frame[2 * i].tag, b))
            std::swap(frame[2 * i], frame[2 * i + 1]);
}

std::optional<PipelineOutput>
PipelinedBenes::clockTick()
{
    ++cycles_;

    // A queued vector enters stage 0 at the start of the clock, so
    // stage 0 processes it during this very cycle (latency is
    // exactly the 2n-1 stages). The queued frame's storage goes back
    // to the spare list for the next inject().
    if (!full_[0] && !pending_.empty()) {
        regs_[0].swap(pending_.front());
        spare_.push_back(std::move(pending_.front()));
        pending_.pop_front();
        full_[0] = 1;
    }

    // The last stage's register drains to the outputs.
    std::optional<PipelineOutput> out;
    const unsigned last = topo_.numStages() - 1;
    if (full_[last]) {
        Frame &frame = regs_[last];
        exchange(frame, last);

        PipelineOutput po;
        po.success = true;
        po.output_tags.resize(frame.size());
        po.payloads.resize(frame.size());
        for (Word j = 0; j < frame.size(); ++j) {
            po.output_tags[j] = frame[j].tag;
            po.payloads[j] = frame[j].payload;
            if (frame[j].tag != j)
                po.success = false;
        }
        out = std::move(po);
        full_[last] = 0;
    }

    // Every earlier stage processes its register in place, then
    // latches the result through the fixed wiring into the next
    // stage's register — a scatter between two persistent frames, no
    // allocation.
    for (unsigned s = last; s > 0; --s) {
        if (!full_[s - 1])
            continue;
        Frame &cur = regs_[s - 1];
        Frame &next = regs_[s];
        exchange(cur, s - 1);
        for (Word line = 0; line < cur.size(); ++line)
            next[topo_.wireToNext(s - 1, line)] = cur[line];
        full_[s] = 1;
        full_[s - 1] = 0;
    }

    if (ticks_) {
        ticks_->inc();
        if (out)
            emerges_->inc();
        in_flight_->set(static_cast<std::int64_t>(inFlight()));
    }
    return out;
}

std::vector<PipelineOutput>
PipelinedBenes::drain()
{
    if (drain_depth_)
        drain_depth_->observe(inFlight());
    std::vector<PipelineOutput> outs;
    while (!drained())
        if (auto out = clockTick())
            outs.push_back(std::move(*out));
    return outs;
}

bool
PipelinedBenes::drained() const
{
    if (!pending_.empty())
        return false;
    for (std::uint8_t f : full_)
        if (f)
            return false;
    return true;
}

} // namespace srbenes
