#include "core/pipeline.hh"

#include "common/logging.hh"

namespace srbenes
{

PipelinedBenes::PipelinedBenes(unsigned n)
    : topo_(n), slots_(topo_.numStages())
{
}

void
PipelinedBenes::inject(const Permutation &d, std::vector<Word> payloads)
{
    if (d.size() != topo_.numLines())
        fatal("pipeline vector size %zu != N = %llu", d.size(),
              static_cast<unsigned long long>(topo_.numLines()));
    if (payloads.size() != d.size())
        fatal("payload count %zu != N = %zu", payloads.size(), d.size());

    Frame frame(d.size());
    for (std::size_t i = 0; i < d.size(); ++i)
        frame[i] = Signal{d[i], payloads[i]};
    pending_.push_back(std::move(frame));
}

void
PipelinedBenes::advance(Frame &frame, unsigned s) const
{
    const unsigned b = topo_.controlBit(s);
    for (Word i = 0; i < topo_.switchesPerStage(); ++i)
        if (bit(frame[2 * i].tag, b))
            std::swap(frame[2 * i], frame[2 * i + 1]);

    if (s + 1 < topo_.numStages()) {
        Frame next(frame.size());
        for (Word line = 0; line < frame.size(); ++line)
            next[topo_.wireToNext(s, line)] = frame[line];
        frame.swap(next);
    }
}

std::optional<PipelineOutput>
PipelinedBenes::clockTick()
{
    ++cycles_;

    // A queued vector enters stage 0 at the start of the clock, so
    // stage 0 processes it during this very cycle (latency is
    // exactly the 2n-1 stages).
    if (!slots_[0] && !pending_.empty()) {
        slots_[0] = std::move(pending_.front());
        pending_.pop_front();
    }

    // The last stage's register drains to the outputs.
    std::optional<PipelineOutput> out;
    const unsigned last = topo_.numStages() - 1;
    if (slots_[last]) {
        Frame frame = std::move(*slots_[last]);
        advance(frame, last);

        PipelineOutput po;
        po.success = true;
        po.output_tags.resize(frame.size());
        po.payloads.resize(frame.size());
        for (Word j = 0; j < frame.size(); ++j) {
            po.output_tags[j] = frame[j].tag;
            po.payloads[j] = frame[j].payload;
            if (frame[j].tag != j)
                po.success = false;
        }
        out = std::move(po);
        slots_[last].reset();
    }

    // Every earlier stage processes its register and latches the
    // result into the next stage's register.
    for (unsigned s = last; s > 0; --s) {
        if (slots_[s - 1]) {
            Frame frame = std::move(*slots_[s - 1]);
            advance(frame, s - 1);
            slots_[s] = std::move(frame);
            slots_[s - 1].reset();
        }
    }

    return out;
}

bool
PipelinedBenes::drained() const
{
    if (!pending_.empty())
        return false;
    for (const auto &slot : slots_)
        if (slot)
            return false;
    return true;
}

} // namespace srbenes
