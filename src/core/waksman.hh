/**
 * @file
 * External Benes setup via the looping algorithm (Waksman [10]).
 *
 * The paper's baseline: before self-routing, the best known way to
 * realize an ARBITRARY permutation on B(n) was to compute all switch
 * states up front in O(N log N) serial time and load them into the
 * fabric. This module implements that algorithm against the flattened
 * BenesTopology so the same network object can be driven either way:
 *
 *     SelfRoutingBenes net(n);
 *     auto states = waksmanSetup(net.topology(), d);
 *     auto res = net.routeWithStates(d, states);   // any d succeeds
 *
 * The algorithm recursively 2-colors each input pair (which of the
 * two enters the upper subnetwork) subject to the output-pair
 * constraint (the two outputs of a closing switch must be fed from
 * different subnetworks), chasing the alternating constraint loops.
 */

#ifndef SRBENES_CORE_WAKSMAN_HH
#define SRBENES_CORE_WAKSMAN_HH

#include "core/topology.hh"
#include "perm/permutation.hh"

namespace srbenes
{

/**
 * Compute switch states realizing @p d on @p topo; O(N log N).
 * The returned states route input i to output d[i] for every i.
 */
SwitchStates waksmanSetup(const BenesTopology &topo,
                          const Permutation &d);

} // namespace srbenes

#endif // SRBENES_CORE_WAKSMAN_HH
