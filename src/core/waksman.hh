/**
 * @file
 * External Benes setup via the looping algorithm (Waksman [10]).
 *
 * The paper's baseline: before self-routing, the best known way to
 * realize an ARBITRARY permutation on B(n) was to compute all switch
 * states up front in O(N log N) serial time and load them into the
 * fabric. This module implements that algorithm against the flattened
 * BenesTopology so the same network object can be driven either way:
 *
 *     SelfRoutingBenes net(n);
 *     auto states = waksmanSetup(net.topology(), d);
 *     auto res = net.routeWithStates(d, states);   // any d succeeds
 *
 * The algorithm recursively 2-colors each input pair (which of the
 * two enters the upper subnetwork) subject to the output-pair
 * constraint (the two outputs of a closing switch must be fed from
 * different subnetworks), chasing the alternating constraint loops.
 */

#ifndef SRBENES_CORE_WAKSMAN_HH
#define SRBENES_CORE_WAKSMAN_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/topology.hh"
#include "perm/permutation.hh"

namespace srbenes
{

/**
 * Compute switch states realizing @p d on @p topo; O(N log N).
 * The returned states route input i to output d[i] for every i.
 */
SwitchStates waksmanSetup(const BenesTopology &topo,
                          const Permutation &d);

/**
 * A constraint on the realized decomposition: switch
 * (@p stage, @p switch_index) must end in @p state. The Benes
 * decomposition of a permutation is not unique — every constraint
 * loop of the looping algorithm has two valid 2-colorings — and a
 * pin asks the setup to spend that freedom deliberately. The
 * resilience layer uses pins to force a SUSPECT switch into its
 * stuck state, so the loaded configuration and the fault agree and
 * the faulty fabric routes exactly (DESIGN.md §7).
 */
struct StatePin
{
    unsigned stage;
    Word switch_index;
    std::uint8_t state;
};

/**
 * waksmanSetup with the free loop colorings drawn from @p seed
 * instead of taken canonically: every seed yields states that
 * realize @p d, generally differing switch-by-switch. Seed 0 is the
 * canonical choice (identical to waksmanSetup). Sampling seeds
 * enumerates distinct decompositions cheaply — the degraded-mode
 * tiers use this to hunt for one compatible with a faulty fabric.
 */
SwitchStates waksmanSetupSeeded(const BenesTopology &topo,
                                const Permutation &d,
                                std::uint64_t seed);

/**
 * Constrained setup: realize @p d while honoring every pin, spending
 * the free loop colorings greedily from the outermost recursion
 * level inward (tie-broken by @p seed). Returns std::nullopt when
 * the pins conflict — two pins land in one constraint loop with
 * opposite parities, or a pinned middle-stage B(1) switch is forced
 * the other way by the sub-permutation that reaches it. A nullopt is
 * a statement about THIS greedy descent, not a proof that no
 * satisfying decomposition exists; callers retry with other seeds.
 */
std::optional<SwitchStates>
waksmanSetupPinned(const BenesTopology &topo, const Permutation &d,
                   const std::vector<StatePin> &pins,
                   std::uint64_t seed = 0);

} // namespace srbenes

#endif // SRBENES_CORE_WAKSMAN_HH
