/**
 * @file
 * Fault-tolerant routing service: the degraded-mode serving layer.
 *
 * The paper's testability story (Section IV: a small destination-tag
 * test set detects any single stuck-at fault) and its setup
 * non-uniqueness (the Waksman looping algorithm's free choices) are
 * POLICY, not mechanism. This module turns them into a serving
 * layer: a ResilientRouter wraps the planning Router and keeps
 * serving verified permutations while a switch is stuck, walking a
 * degraded-mode fallback chain.
 *
 *   Primary  the planned fast strategy, run through the (possibly
 *            faulty) fabric with per-request output-tag
 *            verification;
 *   Reroute  an externally set pass whose decomposition is PINNED so
 *            the suspect switch's loaded state equals its stuck
 *            value — the fault becomes a don't-care and the pass
 *            routes exactly (waksmanSetupPinned);
 *   TwoPass  re-factored D = P1 o P2 drawn from fresh looping seeds
 *            until both tag-driven passes verify on the faulty
 *            fabric (twoPassPlanSeeded);
 *   Failed   fail-fast with a structured fault_detected error
 *            naming the diagnosed suspects.
 *
 * The honesty invariant: serving decisions read ONLY observable
 * signals — the output tags of each pass (the fabric carries
 * destination tags by construction, so tag verification is the
 * software analogue of an output-side comparator) and the
 * probe-and-diagnose results of faults.hh. Injected faults model the
 * hardware; the serving layer never peeks at them. A faulty fabric
 * is therefore DETECTED or routed around, never silently wrong.
 *
 * Health tracking: probe() runs the cached detection test set,
 * compares observed tags against healthy references, localizes
 * mismatches with diagnoseSingleFault, and publishes a per-switch
 * scoreboard (gauges created lazily per suspect switch, so a healthy
 * fleet exports one boolean and two totals).
 */

#ifndef SRBENES_CORE_RESILIENT_HH
#define SRBENES_CORE_RESILIENT_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/prng.hh"
#include "common/thread_annotations.hh"
#include "core/faults.hh"
#include "core/router.hh"
#include "core/waksman.hh"
#include "obs/metrics.hh"

namespace srbenes
{

/** One switch's standing in the health scoreboard. */
enum class SwitchHealth : std::uint8_t
{
    Healthy = 0, //!< consistent with every probe so far
    Suspect,     //!< in the latest diagnosis candidate set
};

const char *switchHealthName(SwitchHealth h) noexcept;

/** What one health probe observed. */
struct ProbeReport
{
    bool healthy = false;       //!< every test's tags matched
    std::size_t tests_run = 0;
    std::size_t tests_mismatched = 0;
    /** Behaviorally-equivalent single-fault candidates (empty when
     *  healthy, or when the evidence fits no single-fault model). */
    std::vector<StuckFault> suspects;
    /** Scoreboard generation in effect after this probe (bumped
     *  only when the published picture changed). */
    std::uint64_t epoch = 0;
};

/** Tuning knobs; the defaults serve small fabrics sensibly. */
struct ResilientOptions
{
    /** Serve the Primary tier this many requests between automatic
     *  re-probes of a believed-faulty fabric; 0 = probe only
     *  on-demand and on a Primary-tier verification failure. */
    std::uint64_t probe_every = 0;
    /** Pinned/seeded decompositions tried by the Reroute tier. 16
     *  keeps multi-fault fabrics servable: with two faults the
     *  diagnosis pins nothing and each unpinned seed must make BOTH
     *  stuck states don't-cares (~1/4 joint odds per draw). */
    unsigned reroute_seeds = 16;
    /** Fresh factorizations tried by the TwoPass tier. */
    unsigned two_pass_seeds = 8;
    /** Full fallback-chain re-runs after a transient failure (a
     *  probe ran between attempts, so attempt k+1 sees a fresher
     *  suspect set than attempt k). */
    unsigned max_retries = 1;
    /** Forwarded to the inner planning Router. */
    bool prefer_waksman = false;
    std::size_t plan_cache_capacity = 64;
    unsigned cache_shards = 8;
    /** Degraded-plan cache entries (verified Reroute states /
     *  TwoPass factorizations keyed by permutation hash, invalidated
     *  by probe epoch); 0 disables. */
    std::size_t degraded_cache_capacity = 64;
    /** Seed of the deterministic test-set construction. */
    std::uint64_t probe_prng_seed = 0x5eed5eed5eedULL;
    /** Instrument registry; nullptr disables instrumentation. */
    obs::MetricsRegistry *metrics = obs::defaultRegistry();
};

/** Monotonic serving totals, snapshot by stats(). */
struct ResilientStats
{
    std::uint64_t serves_primary = 0;
    std::uint64_t serves_reroute = 0;
    std::uint64_t serves_two_pass = 0;
    std::uint64_t failures_fault = 0;
    std::uint64_t failures_deadline = 0;
    std::uint64_t probes = 0;
    std::uint64_t retries = 0;
    std::uint64_t degraded_cache_hits = 0;
};

/**
 * The serving facade. Thread-safe: route() and probe() may race with
 * fault injection from other threads; the scoreboard and the fault
 * overlay sit behind one reader-writer lock and the counters are the
 * sharded obs primitives.
 */
class ResilientRouter
{
  public:
    explicit ResilientRouter(unsigned n,
                             ResilientOptions opts = {});

    const Router &router() const noexcept { return router_; }
    const SelfRoutingBenes &fabric() const noexcept
    {
        return router_.fabric();
    }
    Word numLines() const noexcept { return fabric().numLines(); }
    const ResilientOptions &options() const noexcept { return opts_; }

    /** @{
     * Chaos interface: model a hardware stuck-at fault. The serving
     * path treats these as the OPAQUE fabric — they shape observed
     * tags but are never read by routing decisions (see the file
     * comment's honesty invariant).
     */
    void injectFault(const StuckFault &fault);
    void clearFaults();
    std::vector<StuckFault> injectedFaults() const;
    /** @} */

    /**
     * Run the detection test set through the fabric, diagnose any
     * mismatch, and publish a new scoreboard generation. On-demand
     * here; route() also calls it when Primary verification fails on
     * a believed-healthy fabric, and every probe_every serves while
     * the fabric is believed faulty.
     */
    ProbeReport probe() const;

    /**
     * Serve @p data along @p d through the fallback chain. The
     * outcome is tag-verified whichever tier produced it; failures
     * carry the structured taxonomy of core/route_outcome.hh.
     *
     * @param deadline_ns absolute obs::monotonicNs() deadline; 0 =
     *        none. Checked between tier attempts (a started fabric
     *        pass always finishes).
     */
    RouteOutcome route(const Permutation &d,
                       const std::vector<Word> &data,
                       std::uint64_t deadline_ns = 0) const;

    /** @{ Scoreboard introspection. */
    SwitchHealth switchHealth(unsigned stage, Word sw) const;
    std::vector<StuckFault> suspects() const;
    bool believedHealthy() const;
    std::uint64_t probeEpoch() const;
    /** @} */

    ResilientStats stats() const;

  private:
    struct DegradedEntry
    {
        DegradedEntry(std::uint64_t ep, ServeTier t, Permutation p)
            : epoch(ep), tier(t), perm(std::move(p))
        {
        }
        std::uint64_t epoch;
        ServeTier tier;
        Permutation perm;
        std::shared_ptr<const SwitchStates> states;  //!< Reroute
        std::shared_ptr<const TwoPassPlan> two_pass; //!< TwoPass
    };

    /** One full walk of the fallback chain; @p deadline_ns as in
     *  route(). */
    RouteOutcome serveOnce(const Permutation &d,
                           const std::vector<Word> &data,
                           std::uint64_t deadline_ns) const;

    /** @{ Tier attempts; @p hw is the injected-fault snapshot fed to
     *  the fabric simulation (the modeled hardware, not a serving
     *  input — results are judged by tags alone). */
    RouteOutcome tryPrimary(const Permutation &d,
                            const std::vector<Word> &data,
                            const std::vector<StuckFault> &hw) const;
    RouteOutcome tryReroute(const Permutation &d,
                            const std::vector<Word> &data,
                            const std::vector<StuckFault> &hw,
                            const std::vector<StuckFault> &suspect,
                            std::uint64_t deadline_ns) const;
    RouteOutcome tryTwoPass(const Permutation &d,
                            const std::vector<Word> &data,
                            const std::vector<StuckFault> &hw,
                            std::uint64_t deadline_ns) const;
    /** @} */

    /** Verified degraded plan for @p d at the current epoch, or
     *  nullptr. */
    std::shared_ptr<const DegradedEntry>
    degradedLookup(std::uint64_t hash, std::uint64_t epoch) const;
    void degradedStore(std::uint64_t hash,
                       std::shared_ptr<const DegradedEntry> e) const;

    /** Publish a probe's verdict. @p healthy is the OBSERVED fabric
     *  health (all test tags matched), which can disagree with
     *  @p suspects being empty: a multiple-fault fabric fits no
     *  single-fault model, so diagnosis comes back empty while the
     *  fabric is demonstrably sick. The epoch advances only when the
     *  published picture actually changes, so a stable fault keeps
     *  degraded-plan cache entries valid across re-probes. */
    void publishScoreboard(const std::vector<StuckFault> &suspects,
                           bool healthy) const SRB_REQUIRES(mu_);

    /** Build tests_/healthy_tags_ on the first probe. Lazy because
     *  the greedy cover costs O(tests x faults x pass) — far more
     *  than a healthy serve, which never needs it. */
    void ensureTests() const;

    ResilientOptions opts_;
    Router router_;
    /** Detection test set and its healthy reference tags, built once
     *  on first use (deterministic in probe_prng_seed) and immutable
     *  afterwards; tests_once_ publishes them. */
    mutable std::once_flag tests_once_;
    mutable std::vector<Permutation> tests_;
    mutable std::vector<std::vector<Word>> healthy_tags_;

    mutable SharedMutex mu_;
    std::vector<StuckFault> faults_ SRB_GUARDED_BY(mu_);
    /** [stage][switch] scoreboard of the latest probe generation;
     *  mutable because probing is logically read-only serving work. */
    mutable std::vector<std::vector<SwitchHealth>> health_
        SRB_GUARDED_BY(mu_);
    mutable std::vector<StuckFault> suspects_ SRB_GUARDED_BY(mu_);
    mutable std::uint64_t epoch_ SRB_GUARDED_BY(mu_) = 0;
    mutable bool believed_healthy_ SRB_GUARDED_BY(mu_) = true;

    mutable Mutex degraded_mu_;
    mutable std::unordered_map<
        std::uint64_t, std::shared_ptr<const DegradedEntry>>
        degraded_ SRB_GUARDED_BY(degraded_mu_);

    /** Primary serves since the last probe (probe_every pacing). */
    mutable std::atomic<std::uint64_t> serves_since_probe_{0};

    /** @{ Monotonic totals behind stats(); obs mirrors optional. */
    mutable obs::Counter serves_by_tier_[3];
    mutable obs::Counter failures_fault_, failures_deadline_;
    mutable obs::Counter probes_, retries_, degraded_hits_;
    /** @} */

    /** @{ Registry instruments; null when metrics are off. */
    obs::MetricsRegistry *metrics_;
    std::string instance_;
    obs::Counter *m_serves_[4] = {};
    obs::Counter *m_probes_ = nullptr;
    obs::Counter *m_retries_ = nullptr;
    obs::Gauge *m_healthy_ = nullptr;
    obs::Gauge *m_suspect_count_ = nullptr;
    obs::Histogram *m_serve_ns_ = nullptr;
    /** @} */
};

} // namespace srbenes

#endif // SRBENES_CORE_RESILIENT_HH
