#include "core/fast_kernels.hh"

#include <atomic>
#include <cstdlib>

#include "common/logging.hh"
#include "obs/metrics.hh"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SRBENES_X86_KERNELS 1
#include <immintrin.h>
#else
#define SRBENES_X86_KERNELS 0
#endif

namespace srbenes
{

namespace
{

// ---------------------------------------------------------------- scalar

void
gatherScalar(Word *out, const Word *in, const Word *src, Word count)
{
    for (Word j = 0; j < count; ++j)
        out[j] = in[src[j]];
}

void
deltaSwapScalar(Word *planes, unsigned nplanes, Word stride,
                const Word *ctrl, Word words, unsigned dist)
{
    for (unsigned p = 0; p < nplanes; ++p) {
        Word *P = planes + Word{p} * stride;
        for (Word w = 0; w < words; ++w) {
            const Word v = P[w];
            const Word t = (v ^ (v >> dist)) & ctrl[w];
            P[w] = v ^ t ^ (t << dist);
        }
    }
}

void
pairSwapScalar(Word *planes, unsigned nplanes, Word stride,
               const Word *ctrl, Word words, Word dw)
{
    for (unsigned p = 0; p < nplanes; ++p) {
        Word *P = planes + Word{p} * stride;
        for (Word w = 0; w < words; ++w) {
            if (w & dw)
                continue;
            const Word t = (P[w] ^ P[w + dw]) & ctrl[w];
            P[w] ^= t;
            P[w + dw] ^= t;
        }
    }
}

/**
 * Column mask for transpose level k: bits at columns whose k-th
 * index bit is clear (the "left" column of each 2^k-wide pair).
 */
constexpr Word kColMask[6] = {
    0x5555555555555555ULL, 0x3333333333333333ULL,
    0x0f0f0f0f0f0f0f0fULL, 0x00ff00ff00ff00ffULL,
    0x0000ffff0000ffffULL, 0x00000000ffffffffULL,
};

/**
 * In-place 64x64 bit-matrix transpose, LSB-first orientation:
 * afterwards bit j of row b equals bit b of input row j. Each level
 * k exchanges sub-blocks across bit k of the (row, column) pair;
 * the levels act on disjoint index bits, so their order is free.
 */
void
transpose64(Word *m)
{
    for (unsigned k = 0; k < 6; ++k) {
        const unsigned j = 1u << k;
        const Word mask = kColMask[k];
        for (Word r = 0; r < 64; r = (r + j + 1) & ~Word{j}) {
            const Word t = ((m[r] >> j) ^ m[r + j]) & mask;
            m[r + j] ^= t;
            m[r] ^= t << j;
        }
    }
}

/** Load lanes [base, base+64) of @p tags into @p block, zero tail. */
void
loadBlock(Word *block, const Word *tags, Word base, Word count)
{
    const Word m = (count - base < 64) ? count - base : 64;
    for (Word r = 0; r < m; ++r)
        block[r] = tags[base + r];
    for (Word r = m; r < 64; ++r)
        block[r] = 0;
}

void
packTagsScalar(Word *planes, unsigned nplanes, Word stride,
               const Word *tags, Word count)
{
    const Word out_words = (count + 63) / 64;
    Word block[64];
    for (Word w = 0; w < out_words; ++w) {
        loadBlock(block, tags, w * 64, count);
        transpose64(block);
        for (unsigned b = 0; b < nplanes; ++b)
            planes[Word{b} * stride + w] = block[b];
    }
}

constexpr KernelTable kScalarTable = {gatherScalar, deltaSwapScalar,
                                      pairSwapScalar, packTagsScalar,
                                      "scalar"};

#if SRBENES_X86_KERNELS

// ----------------------------------------------------------------- AVX2

__attribute__((target("avx2"))) void
gatherAvx2(Word *out, const Word *in, const Word *src, Word count)
{
    Word j = 0;
    for (; j + 4 <= count; j += 4) {
        const __m256i idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + j));
        const __m256i v = _mm256_i64gather_epi64(
            reinterpret_cast<const long long *>(in), idx, 8);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + j), v);
    }
    for (; j < count; ++j)
        out[j] = in[src[j]];
}

__attribute__((target("avx2"))) void
deltaSwapAvx2(Word *planes, unsigned nplanes, Word stride,
              const Word *ctrl, Word words, unsigned dist)
{
    const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(dist));
    for (unsigned p = 0; p < nplanes; ++p) {
        Word *P = planes + Word{p} * stride;
        Word w = 0;
        for (; w + 4 <= words; w += 4) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(P + w));
            const __m256i c = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(ctrl + w));
            const __m256i t = _mm256_and_si256(
                _mm256_xor_si256(v, _mm256_srl_epi64(v, shift)), c);
            const __m256i x =
                _mm256_xor_si256(t, _mm256_sll_epi64(t, shift));
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(P + w),
                                _mm256_xor_si256(v, x));
        }
        for (; w < words; ++w) {
            const Word v = P[w];
            const Word t = (v ^ (v >> dist)) & ctrl[w];
            P[w] = v ^ t ^ (t << dist);
        }
    }
}

__attribute__((target("avx2"))) void
pairSwapAvx2(Word *planes, unsigned nplanes, Word stride,
             const Word *ctrl, Word words, Word dw)
{
    if (dw < 4) {
        pairSwapScalar(planes, nplanes, stride, ctrl, words, dw);
        return;
    }
    for (unsigned p = 0; p < nplanes; ++p) {
        Word *P = planes + Word{p} * stride;
        for (Word base = 0; base + 2 * dw <= words; base += 2 * dw) {
            for (Word w = base; w < base + dw; w += 4) {
                const __m256i a = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(P + w));
                const __m256i b = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(P + w + dw));
                const __m256i c = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(ctrl + w));
                const __m256i t =
                    _mm256_and_si256(_mm256_xor_si256(a, b), c);
                _mm256_storeu_si256(reinterpret_cast<__m256i *>(P + w),
                                    _mm256_xor_si256(a, t));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(P + w + dw),
                    _mm256_xor_si256(b, t));
            }
        }
    }
}

__attribute__((target("avx2"))) void
transpose64Avx2(Word *m)
{
    // Levels 32/16/8/4 pair runs of >= 4 consecutive rows, so each
    // exchange is a pair of 256-bit loads; levels 2/1 interleave at
    // sub-vector stride and stay scalar (they are 1/3 of the work).
    for (unsigned k = 5; k >= 2; --k) {
        const unsigned j = 1u << k;
        const __m256i mask = _mm256_set1_epi64x(
            static_cast<long long>(kColMask[k]));
        const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(j));
        for (Word base = 0; base < 64; base += 2 * Word{j})
            for (Word r = base; r < base + j; r += 4) {
                const __m256i a = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(m + r));
                const __m256i b = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(m + r + j));
                const __m256i t = _mm256_and_si256(
                    _mm256_xor_si256(_mm256_srl_epi64(a, shift), b),
                    mask);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(m + r + j),
                    _mm256_xor_si256(b, t));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(m + r),
                    _mm256_xor_si256(a, _mm256_sll_epi64(t, shift)));
            }
    }
    for (unsigned k = 0; k < 2; ++k) {
        const unsigned j = 1u << k;
        const Word mask = kColMask[k];
        for (Word r = 0; r < 64; r = (r + j + 1) & ~Word{j}) {
            const Word t = ((m[r] >> j) ^ m[r + j]) & mask;
            m[r + j] ^= t;
            m[r] ^= t << j;
        }
    }
}

__attribute__((target("avx2"))) void
packTagsAvx2(Word *planes, unsigned nplanes, Word stride,
             const Word *tags, Word count)
{
    const Word out_words = (count + 63) / 64;
    Word block[64];
    for (Word w = 0; w < out_words; ++w) {
        loadBlock(block, tags, w * 64, count);
        transpose64Avx2(block);
        for (unsigned b = 0; b < nplanes; ++b)
            planes[Word{b} * stride + w] = block[b];
    }
}

constexpr KernelTable kAvx2Table = {gatherAvx2, deltaSwapAvx2,
                                    pairSwapAvx2, packTagsAvx2,
                                    "avx2"};

// --------------------------------------------------------------- AVX-512

// GCC's avx512fintrin.h trips -Wmaybe-uninitialized on its own
// undefined-passthrough idiom; the warnings point into the system
// header, not at this code.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("avx512f"))) void
gatherAvx512(Word *out, const Word *in, const Word *src, Word count)
{
    Word j = 0;
    for (; j + 8 <= count; j += 8) {
        const __m512i idx = _mm512_loadu_si512(src + j);
        const __m512i v = _mm512_i64gather_epi64(idx, in, 8);
        _mm512_storeu_si512(out + j, v);
    }
    if (j < count) {
        const __mmask8 m =
            static_cast<__mmask8>((1u << (count - j)) - 1u);
        const __m512i zero = _mm512_setzero_si512();
        const __m512i idx = _mm512_mask_loadu_epi64(zero, m, src + j);
        const __m512i v =
            _mm512_mask_i64gather_epi64(zero, m, idx, in, 8);
        _mm512_mask_storeu_epi64(out + j, m, v);
    }
}

__attribute__((target("avx512f"))) void
deltaSwapAvx512(Word *planes, unsigned nplanes, Word stride,
                const Word *ctrl, Word words, unsigned dist)
{
    const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(dist));
    for (unsigned p = 0; p < nplanes; ++p) {
        Word *P = planes + Word{p} * stride;
        Word w = 0;
        for (; w + 8 <= words; w += 8) {
            const __m512i v = _mm512_loadu_si512(P + w);
            const __m512i c = _mm512_loadu_si512(ctrl + w);
            const __m512i t = _mm512_and_si512(
                _mm512_xor_si512(v, _mm512_srl_epi64(v, shift)), c);
            const __m512i x =
                _mm512_xor_si512(t, _mm512_sll_epi64(t, shift));
            _mm512_storeu_si512(P + w, _mm512_xor_si512(v, x));
        }
        for (; w < words; ++w) {
            const Word v = P[w];
            const Word t = (v ^ (v >> dist)) & ctrl[w];
            P[w] = v ^ t ^ (t << dist);
        }
    }
}

__attribute__((target("avx512f"))) void
pairSwapAvx512(Word *planes, unsigned nplanes, Word stride,
               const Word *ctrl, Word words, Word dw)
{
    if (dw < 8) {
        pairSwapAvx2(planes, nplanes, stride, ctrl, words, dw);
        return;
    }
    for (unsigned p = 0; p < nplanes; ++p) {
        Word *P = planes + Word{p} * stride;
        for (Word base = 0; base + 2 * dw <= words; base += 2 * dw) {
            for (Word w = base; w < base + dw; w += 8) {
                const __m512i a = _mm512_loadu_si512(P + w);
                const __m512i b = _mm512_loadu_si512(P + w + dw);
                const __m512i c = _mm512_loadu_si512(ctrl + w);
                const __m512i t =
                    _mm512_and_si512(_mm512_xor_si512(a, b), c);
                _mm512_storeu_si512(P + w, _mm512_xor_si512(a, t));
                _mm512_storeu_si512(P + w + dw,
                                    _mm512_xor_si512(b, t));
            }
        }
    }
}

__attribute__((target("avx512f"))) void
transpose64Avx512(Word *m)
{
    // Levels 32/16/8 pair runs of >= 8 consecutive rows (one zmm
    // each); the remaining levels interleave below vector stride
    // and stay scalar.
    for (unsigned k = 5; k >= 3; --k) {
        const unsigned j = 1u << k;
        const __m512i mask = _mm512_set1_epi64(
            static_cast<long long>(kColMask[k]));
        const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(j));
        for (Word base = 0; base < 64; base += 2 * Word{j})
            for (Word r = base; r < base + j; r += 8) {
                const __m512i a = _mm512_loadu_si512(m + r);
                const __m512i b = _mm512_loadu_si512(m + r + j);
                const __m512i t = _mm512_and_si512(
                    _mm512_xor_si512(_mm512_srl_epi64(a, shift), b),
                    mask);
                _mm512_storeu_si512(m + r + j,
                                    _mm512_xor_si512(b, t));
                _mm512_storeu_si512(
                    m + r,
                    _mm512_xor_si512(a, _mm512_sll_epi64(t, shift)));
            }
    }
    for (unsigned k = 0; k < 3; ++k) {
        const unsigned j = 1u << k;
        const Word mask = kColMask[k];
        for (Word r = 0; r < 64; r = (r + j + 1) & ~Word{j}) {
            const Word t = ((m[r] >> j) ^ m[r + j]) & mask;
            m[r + j] ^= t;
            m[r] ^= t << j;
        }
    }
}

__attribute__((target("avx512f"))) void
packTagsAvx512(Word *planes, unsigned nplanes, Word stride,
               const Word *tags, Word count)
{
    const Word out_words = (count + 63) / 64;
    Word block[64];
    for (Word w = 0; w < out_words; ++w) {
        loadBlock(block, tags, w * 64, count);
        transpose64Avx512(block);
        for (unsigned b = 0; b < nplanes; ++b)
            planes[Word{b} * stride + w] = block[b];
    }
}

#pragma GCC diagnostic pop

constexpr KernelTable kAvx512Table = {gatherAvx512, deltaSwapAvx512,
                                      pairSwapAvx512, packTagsAvx512,
                                      "avx512"};

#endif // SRBENES_X86_KERNELS

// ------------------------------------------------------------- dispatch

bool
simdDisabledByEnv()
{
    const char *env = std::getenv("SRBENES_DISABLE_SIMD");
    return env && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
}

std::atomic<const KernelTable *> g_active{nullptr};

/**
 * Record a kernel-table selection in the global registry. Dispatch
 * is rare (first use plus explicit setSimdLevel calls), so this
 * never touches the per-route hot path.
 */
void
recordDispatch(SimdLevel level)
{
    auto &reg = obs::MetricsRegistry::global();
    reg.counter("srbenes_simd_dispatch_total",
                {{"level", simdLevelName(level)}})
        .inc();
    reg.gauge("srbenes_simd_active_level")
        .set(static_cast<std::int64_t>(level));
}

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar:
        return "scalar";
      case SimdLevel::Avx2:
        return "avx2";
      case SimdLevel::Avx512:
        return "avx512";
    }
    return "?";
}

bool
simdLevelCompiled(SimdLevel level)
{
#if SRBENES_X86_KERNELS
    (void)level;
    return true;
#else
    return level == SimdLevel::Scalar;
#endif
}

bool
simdLevelSupported(SimdLevel level)
{
    if (level == SimdLevel::Scalar)
        return true;
#if SRBENES_X86_KERNELS
    __builtin_cpu_init();
    if (level == SimdLevel::Avx2)
        return __builtin_cpu_supports("avx2");
    return __builtin_cpu_supports("avx512f");
#else
    return false;
#endif
}

SimdLevel
detectSimdLevel()
{
    if (simdDisabledByEnv())
        return SimdLevel::Scalar;
    if (simdLevelSupported(SimdLevel::Avx512))
        return SimdLevel::Avx512;
    if (simdLevelSupported(SimdLevel::Avx2))
        return SimdLevel::Avx2;
    return SimdLevel::Scalar;
}

const KernelTable &
kernelsFor(SimdLevel level)
{
    if (!simdLevelSupported(level))
        fatal("SIMD level %s is not supported on this host",
              simdLevelName(level));
    switch (level) {
      case SimdLevel::Scalar:
        return kScalarTable;
#if SRBENES_X86_KERNELS
      case SimdLevel::Avx2:
        return kAvx2Table;
      case SimdLevel::Avx512:
        return kAvx512Table;
#else
      default:
        break;
#endif
    }
    return kScalarTable;
}

const KernelTable &
activeKernels()
{
    // order: acquire pairs with the release stores below and in
    // setSimdLevel, publishing the table the pointer refers to.
    const KernelTable *t = g_active.load(std::memory_order_acquire);
    if (!t) {
        const SimdLevel level = detectSimdLevel();
        t = &kernelsFor(level);
        // order: release publishes the selected table; racing
        // detections pick identical tables, so the last store wins
        // harmlessly.
        g_active.store(t, std::memory_order_release);
        recordDispatch(level);
    }
    return *t;
}

SimdLevel
activeSimdLevel()
{
    const KernelTable *t = &activeKernels();
#if SRBENES_X86_KERNELS
    if (t == &kAvx512Table)
        return SimdLevel::Avx512;
    if (t == &kAvx2Table)
        return SimdLevel::Avx2;
#endif
    (void)t;
    return SimdLevel::Scalar;
}

void
setSimdLevel(SimdLevel level)
{
    // order: release pairs with the acquire in activeKernels().
    g_active.store(&kernelsFor(level), std::memory_order_release);
    recordDispatch(level);
}

} // namespace srbenes
