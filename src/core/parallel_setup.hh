/**
 * @file
 * Parallel Benes setup on a CIC (Section I's [7] baseline).
 *
 * The serial Waksman setup chases the alternating constraint loops
 * one node at a time: O(N log N). On a completely interconnected
 * computer the same 2-coloring parallelizes: define the doubled
 * successor succ(x) = dinv[d[x xor 1] xor 1] (hop over the input
 * partner and the output-pair constraint). succ preserves the color
 * class, so the color of x is decided by comparing the minimum
 * element of x's succ-orbit against that of its partner's orbit --
 * and orbit minima fall out of O(log N) pointer-jumping rounds, all
 * PEs working at once.
 *
 * Every recursion level ell of B(n) runs this coloring on its
 * 2^ell independent subproblems simultaneously (they tile the PE
 * array), so the measured parallel step count is
 * sum_ell O(n - ell) = O(log^2 N), against O(N log N) serial work.
 * (The cited [7] sharpens this to O(log N) on a CIC with a more
 * intricate coloring; this module implements the straightforward
 * pointer-jumping parallelization and reports measured counts.)
 *
 * The produced states drive the same flattened fabric as
 * waksmanSetup and realize the same permutations (the realization
 * may differ switch-by-switch: the Benes decomposition is not
 * unique).
 */

#ifndef SRBENES_CORE_PARALLEL_SETUP_HH
#define SRBENES_CORE_PARALLEL_SETUP_HH

#include "core/topology.hh"
#include "perm/permutation.hh"
#include "simd/cic.hh"

namespace srbenes
{

/** Measured cost of one parallel setup run. */
struct ParallelSetupStats
{
    std::uint64_t unit_routes = 0;   //!< CIC register permutations
    std::uint64_t compute_steps = 0; //!< lock-step local operations
    std::uint64_t
    total() const
    {
        return unit_routes + compute_steps;
    }
};

/**
 * Compute switch states realizing @p d on @p topo with the
 * data-parallel coloring, executed on an N-PE CIC; fills @p stats
 * with the measured step counts when non-null.
 *
 * @p seed draws the free coloring of each constraint loop (the
 * decomposition's non-uniqueness): every seed realizes @p d, and
 * seed 0 is the canonical minima-comparison coloring. The flip key
 * min(own orbit minimum, partner orbit minimum) is shared by every
 * member of a constraint loop, so a loop always flips wholesale —
 * one extra lock-step local operation, no extra unit routes.
 */
SwitchStates parallelSetup(const BenesTopology &topo,
                           const Permutation &d,
                           ParallelSetupStats *stats = nullptr,
                           std::uint64_t seed = 0);

} // namespace srbenes

#endif // SRBENES_CORE_PARALLEL_SETUP_HH
