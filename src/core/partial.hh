/**
 * @file
 * Partial permutations on the self-routing fabric.
 *
 * Real SIMD workloads often route fewer than N records (masked
 * PEs). The Fig. 3 rule extends naturally to idle inputs: a switch
 * takes its state from bit b of the upper input's tag when the
 * upper input is active; from the COMPLEMENT of bit b of the lower
 * input's tag when only the lower is active (so the lower signal
 * still exits through the correct port); and rests straight when
 * both are idle. A single active signal therefore always reaches
 * its destination, and full-occupancy behavior is exactly the
 * original rule.
 *
 * Which partial mappings route is an occupancy-dependent question
 * the paper leaves open; bench_partial measures the success
 * probability as a function of the active count.
 */

#ifndef SRBENES_CORE_PARTIAL_HH
#define SRBENES_CORE_PARTIAL_HH

#include <vector>

#include "common/prng.hh"
#include "core/self_routing.hh"

namespace srbenes
{

/** A partial destination assignment; idle inputs carry kIdle. */
class PartialMapping
{
  public:
    static constexpr Word kIdle = ~Word{0};

    /** Validates: active destinations in range and distinct. */
    explicit PartialMapping(std::vector<Word> dest);

    /** Restrict a full permutation to the inputs in @p active. */
    static PartialMapping restrict(const Permutation &perm,
                                   const std::vector<bool> &active);

    /** Uniform random: @p active_count distinct sources mapped to
     *  distinct destinations. */
    static PartialMapping random(std::size_t size,
                                 std::size_t active_count,
                                 Prng &prng);

    std::size_t size() const { return dest_.size(); }
    std::size_t activeCount() const { return active_count_; }
    bool isActive(std::size_t i) const { return dest_[i] != kIdle; }
    Word operator[](std::size_t i) const { return dest_[i]; }
    const std::vector<Word> &dest() const { return dest_; }

  private:
    std::vector<Word> dest_;
    std::size_t active_count_;
};

/** Outcome of a partial route. */
struct PartialRouteResult
{
    bool success = false;          //!< every active signal delivered
    std::vector<Word> output_tags; //!< kIdle on unused outputs
    unsigned delivered = 0;        //!< active signals that arrived
    SwitchStates states;
};

/** Self-route a partial mapping with the extended Fig. 3 rule. */
PartialRouteResult routePartial(const SelfRoutingBenes &net,
                                const PartialMapping &mapping);

} // namespace srbenes

#endif // SRBENES_CORE_PARTIAL_HH
