#include "core/topology.hh"

#include "common/logging.hh"

namespace srbenes
{

BenesTopology::BenesTopology(unsigned n)
    : n_(n)
{
    if (n < 1 || n > 30)
        fatal("Benes network size n = %u out of supported range", n);
    if (n > 1) {
        wires_.assign(2 * n - 2, std::vector<Word>(numLines()));
        build(n, 0, 0);
    }
}

void
BenesTopology::build(unsigned m, Word base_line, unsigned base_stage)
{
    if (m == 1)
        return;

    const Word size = Word{1} << m;
    const Word half = size / 2;

    // Boundary after the opening stage: switch j>>1's upper (lower)
    // output feeds input j>>1 of the upper (lower) B(m-1) half -- an
    // unshuffle of the local line index.
    for (Word j = 0; j < size; ++j)
        wires_[base_stage][base_line + j] =
            base_line + (j & 1) * half + (j >> 1);

    // Boundary before the closing stage: output j of the upper
    // (lower) half feeds the upper (lower) port of closing switch j
    // -- the inverse shuffle.
    const unsigned last = base_stage + 2 * m - 3;
    for (Word j = 0; j < size; ++j)
        wires_[last][base_line + j] =
            base_line + ((j < half) ? 2 * j : 2 * (j - half) + 1);

    build(m - 1, base_line, base_stage + 1);
    build(m - 1, base_line + half, base_stage + 1);
}

SwitchStates
BenesTopology::makeStates() const
{
    return SwitchStates(numStages(),
                        std::vector<std::uint8_t>(switchesPerStage(), 0));
}

} // namespace srbenes
