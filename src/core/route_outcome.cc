#include "core/route_outcome.hh"

#include "common/logging.hh"

namespace srbenes
{

const char *
routeErrcName(RouteErrc e) noexcept
{
    switch (e) {
      case RouteErrc::Ok:
        return "ok";
      case RouteErrc::NotInF:
        return "not_in_F";
      case RouteErrc::FaultDetected:
        return "fault_detected";
      case RouteErrc::DeadlineExceeded:
        return "deadline_exceeded";
      case RouteErrc::Shed:
        return "shed";
    }
    return "?";
}

const char *
serveTierName(ServeTier t) noexcept
{
    switch (t) {
      case ServeTier::Primary:
        return "primary";
      case ServeTier::Reroute:
        return "reroute";
      case ServeTier::TwoPass:
        return "two_pass";
      case ServeTier::Failed:
        return "failed";
    }
    return "?";
}

const std::vector<Word> &
RouteOutcome::value() const
{
    if (!ok())
        panic("RouteOutcome::value() on a %s error",
              routeErrcName(err_.code));
    return payload_;
}

std::vector<Word> &&
RouteOutcome::takeValue()
{
    if (!ok())
        panic("RouteOutcome::takeValue() on a %s error",
              routeErrcName(err_.code));
    return std::move(payload_);
}

const RouteError &
RouteOutcome::error() const
{
    if (ok())
        panic("RouteOutcome::error() on a successful outcome");
    return err_;
}

} // namespace srbenes
