#include "core/waksman.hh"

#include "common/logging.hh"

namespace srbenes
{

namespace
{

/**
 * Recursive worker. @p d maps local input x to local output d[x] on
 * the subnetwork of 2^m lines starting at global line @p base_line
 * and global stage @p base_stage.
 */
void
setupRecursive(const BenesTopology &topo, SwitchStates &states,
               const std::vector<Word> &d, unsigned m, Word base_line,
               unsigned base_stage)
{
    const Word size = Word{1} << m;
    const Word sw_base = base_line / 2;

    if (m == 1) {
        states[base_stage][sw_base] =
            static_cast<std::uint8_t>(d[0] == 1);
        return;
    }

    std::vector<Word> dinv(size);
    for (Word x = 0; x < size; ++x)
        dinv[d[x]] = x;

    // up[x]: 0 if input x is sent to the upper B(m-1), 1 if lower.
    std::vector<int> up(size, -1);
    for (Word p = 0; p < size / 2; ++p) {
        if (up[2 * p] != -1)
            continue;
        // Chase the alternating loop of pair constraints starting
        // with an arbitrary choice for this input pair.
        Word x = 2 * p;
        int val = 0;
        while (up[x] == -1) {
            up[x] = val;
            up[x ^ 1] = 1 - val;
            // Output-pair constraint: the input feeding the sibling
            // output of d[x^1] must use the other subnetwork, i.e.
            // the same one as x.
            x = dinv[d[x ^ 1] ^ 1];
        }
    }

    // Opening stage: state 0 keeps the upper input (even line) on the
    // upper output, which leads to the upper subnetwork.
    for (Word i = 0; i < size / 2; ++i)
        states[base_stage][sw_base + i] =
            static_cast<std::uint8_t>(up[2 * i]);

    // Closing stage: state 0 takes output 2j from the upper
    // subnetwork.
    const unsigned last_stage = base_stage + 2 * m - 2;
    for (Word j = 0; j < size / 2; ++j)
        states[last_stage][sw_base + j] =
            static_cast<std::uint8_t>(up[dinv[2 * j]]);

    // Build the two sub-permutations: the up-routed input of pair i
    // becomes input i of the upper subnetwork and must leave through
    // closing switch d[x] >> 1, i.e. upper subnetwork output
    // d[x] >> 1; symmetrically for the lower.
    std::vector<Word> usub(size / 2), lsub(size / 2);
    for (Word i = 0; i < size / 2; ++i) {
        const Word x_up = 2 * i + static_cast<Word>(up[2 * i] != 0);
        const Word x_dn = x_up ^ 1;
        usub[i] = d[x_up] >> 1;
        lsub[i] = d[x_dn] >> 1;
    }

    setupRecursive(topo, states, usub, m - 1, base_line,
                   base_stage + 1);
    setupRecursive(topo, states, lsub, m - 1, base_line + size / 2,
                   base_stage + 1);
}

} // namespace

SwitchStates
waksmanSetup(const BenesTopology &topo, const Permutation &d)
{
    if (d.size() != topo.numLines())
        fatal("permutation size %zu does not match network N = %llu",
              d.size(),
              static_cast<unsigned long long>(topo.numLines()));

    SwitchStates states = topo.makeStates();
    setupRecursive(topo, states, d.dest(), topo.n(), 0, 0);
    return states;
}

} // namespace srbenes
