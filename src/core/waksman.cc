#include "core/waksman.hh"

#include "common/logging.hh"

namespace srbenes
{

namespace
{

/**
 * Recursive worker. @p d maps local input x to local output d[x] on
 * the subnetwork of 2^m lines starting at global line @p base_line
 * and global stage @p base_stage.
 */
void
setupRecursive(const BenesTopology &topo, SwitchStates &states,
               const std::vector<Word> &d, unsigned m, Word base_line,
               unsigned base_stage)
{
    const Word size = Word{1} << m;
    const Word sw_base = base_line / 2;

    if (m == 1) {
        states[base_stage][sw_base] =
            static_cast<std::uint8_t>(d[0] == 1);
        return;
    }

    std::vector<Word> dinv(size);
    for (Word x = 0; x < size; ++x)
        dinv[d[x]] = x;

    // up[x]: 0 if input x is sent to the upper B(m-1), 1 if lower.
    std::vector<int> up(size, -1);
    for (Word p = 0; p < size / 2; ++p) {
        if (up[2 * p] != -1)
            continue;
        // Chase the alternating loop of pair constraints starting
        // with an arbitrary choice for this input pair.
        Word x = 2 * p;
        int val = 0;
        while (up[x] == -1) {
            up[x] = val;
            up[x ^ 1] = 1 - val;
            // Output-pair constraint: the input feeding the sibling
            // output of d[x^1] must use the other subnetwork, i.e.
            // the same one as x.
            x = dinv[d[x ^ 1] ^ 1];
        }
    }

    // Opening stage: state 0 keeps the upper input (even line) on the
    // upper output, which leads to the upper subnetwork.
    for (Word i = 0; i < size / 2; ++i)
        states[base_stage][sw_base + i] =
            static_cast<std::uint8_t>(up[2 * i]);

    // Closing stage: state 0 takes output 2j from the upper
    // subnetwork.
    const unsigned last_stage = base_stage + 2 * m - 2;
    for (Word j = 0; j < size / 2; ++j)
        states[last_stage][sw_base + j] =
            static_cast<std::uint8_t>(up[dinv[2 * j]]);

    // Build the two sub-permutations: the up-routed input of pair i
    // becomes input i of the upper subnetwork and must leave through
    // closing switch d[x] >> 1, i.e. upper subnetwork output
    // d[x] >> 1; symmetrically for the lower.
    std::vector<Word> usub(size / 2), lsub(size / 2);
    for (Word i = 0; i < size / 2; ++i) {
        const Word x_up = 2 * i + static_cast<Word>(up[2 * i] != 0);
        const Word x_dn = x_up ^ 1;
        usub[i] = d[x_up] >> 1;
        lsub[i] = d[x_dn] >> 1;
    }

    setupRecursive(topo, states, usub, m - 1, base_line,
                   base_stage + 1);
    setupRecursive(topo, states, lsub, m - 1, base_line + size / 2,
                   base_stage + 1);
}

/** splitmix64 finalizer for the seeded loop-color draws. */
std::uint64_t
mixColorKey(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/** Free-choice color for the loop starting at global input @p start
 *  of the node at (@p base_stage, @p base_line); seed 0 = canonical
 *  0, matching the unseeded algorithm exactly. */
int
seededColor(std::uint64_t seed, unsigned base_stage, Word base_line,
            Word start)
{
    if (seed == 0)
        return 0;
    // Top bit: the finalizer's low bit is visibly biased over the
    // small structured keys this draw feeds it (consecutive seeds
    // xor tiny ids), which starves the reseeded searches of
    // diversity; bit 63 passes through all three avalanche rounds.
    return static_cast<int>(
        mixColorKey(seed ^ (std::uint64_t{base_stage} << 48) ^
                    (base_line << 24) ^ start) >>
        63);
}

/**
 * Recursive worker shared by the seeded and pinned variants. Pins
 * addressed to this node's opening/closing stage translate into
 * required colors; each constraint loop is chased once with a
 * tentative coloring, then flipped wholesale if a requirement (or
 * the seed) says so. Returns false on the first conflict.
 */
bool
setupRecursivePinned(const BenesTopology &topo, SwitchStates &states,
                     const std::vector<Word> &d, unsigned m,
                     Word base_line, unsigned base_stage,
                     const std::vector<StatePin> &pins,
                     std::uint64_t seed)
{
    const Word size = Word{1} << m;
    const Word sw_base = base_line / 2;

    if (m == 1) {
        const std::uint8_t state =
            static_cast<std::uint8_t>(d[0] == 1);
        // The final B(1) has no freedom: its state is forced by the
        // sub-permutation the outer colorings delivered.
        for (const StatePin &pin : pins)
            if (pin.stage == base_stage &&
                pin.switch_index == sw_base && pin.state != state)
                return false;
        states[base_stage][sw_base] = state;
        return true;
    }

    std::vector<Word> dinv(size);
    for (Word x = 0; x < size; ++x)
        dinv[d[x]] = x;

    const unsigned last_stage = base_stage + 2 * m - 2;

    // Per-input required color (-1 = free): an opening pin fixes its
    // pair's upper input directly; a closing pin fixes the input
    // feeding the even output of its switch (the closing state is
    // up[dinv[2j]]).
    std::vector<int> required(size, -1);
    auto requireColor = [&](Word x, int val) {
        if (required[x] != -1 && required[x] != val)
            return false;
        required[x] = val;
        // The partner is the loop's responsibility; recording only x
        // is enough because the chase assigns pairs atomically.
        return true;
    };
    for (const StatePin &pin : pins) {
        if (pin.stage == base_stage) {
            const Word local = pin.switch_index - sw_base;
            if (pin.switch_index < sw_base || local >= size / 2)
                continue; // belongs to a sibling node
            if (!requireColor(2 * local, pin.state))
                return false;
        } else if (pin.stage == last_stage) {
            const Word local = pin.switch_index - sw_base;
            if (pin.switch_index < sw_base || local >= size / 2)
                continue;
            if (!requireColor(dinv[2 * local], pin.state))
                return false;
        }
    }

    // up[x]: 0 if input x is sent to the upper B(m-1), 1 if lower.
    std::vector<int> up(size, -1);
    std::vector<Word> members;
    for (Word p = 0; p < size / 2; ++p) {
        if (up[2 * p] != -1)
            continue;
        // Chase the loop with a tentative coloring, remembering its
        // members so one wholesale flip can satisfy a requirement.
        members.clear();
        Word x = 2 * p;
        int val = 0;
        while (up[x] == -1) {
            up[x] = val;
            up[x ^ 1] = 1 - val;
            members.push_back(x);
            x = dinv[d[x ^ 1] ^ 1];
        }
        int flip = -1; // -1 = unconstrained
        for (Word mx : members) {
            for (Word cand : {mx, mx ^ Word{1}}) {
                if (required[cand] == -1)
                    continue;
                const int need =
                    static_cast<int>(up[cand] != required[cand]);
                if (flip == -1)
                    flip = need;
                else if (flip != need)
                    return false; // pins disagree within one loop
            }
        }
        if (flip == -1)
            flip = seededColor(seed, base_stage, base_line, 2 * p);
        if (flip)
            for (Word mx : members) {
                up[mx] ^= 1;
                up[mx ^ 1] ^= 1;
            }
    }

    // Opening stage: state 0 keeps the upper input (even line) on the
    // upper output, which leads to the upper subnetwork.
    for (Word i = 0; i < size / 2; ++i)
        states[base_stage][sw_base + i] =
            static_cast<std::uint8_t>(up[2 * i]);

    // Closing stage: state 0 takes output 2j from the upper
    // subnetwork.
    for (Word j = 0; j < size / 2; ++j)
        states[last_stage][sw_base + j] =
            static_cast<std::uint8_t>(up[dinv[2 * j]]);

    std::vector<Word> usub(size / 2), lsub(size / 2);
    for (Word i = 0; i < size / 2; ++i) {
        const Word x_up = 2 * i + static_cast<Word>(up[2 * i] != 0);
        const Word x_dn = x_up ^ 1;
        usub[i] = d[x_up] >> 1;
        lsub[i] = d[x_dn] >> 1;
    }

    // Deeper pins partition by switch range: the upper B(m-1) owns
    // switches [sw_base, sw_base + size/4), the lower the next
    // size/4, across stages (base_stage, last_stage) exclusive.
    std::vector<StatePin> upins, lpins;
    for (const StatePin &pin : pins) {
        if (pin.stage <= base_stage || pin.stage >= last_stage)
            continue;
        if (pin.switch_index < sw_base ||
            pin.switch_index >= sw_base + size / 2)
            continue;
        if (pin.switch_index < sw_base + size / 4)
            upins.push_back(pin);
        else
            lpins.push_back(pin);
    }

    return setupRecursivePinned(topo, states, usub, m - 1, base_line,
                                base_stage + 1, upins, seed) &&
           setupRecursivePinned(topo, states, lsub, m - 1,
                                base_line + size / 2, base_stage + 1,
                                lpins, seed);
}

} // namespace

SwitchStates
waksmanSetup(const BenesTopology &topo, const Permutation &d)
{
    if (d.size() != topo.numLines())
        fatal("permutation size %zu does not match network N = %llu",
              d.size(),
              static_cast<unsigned long long>(topo.numLines()));

    SwitchStates states = topo.makeStates();
    setupRecursive(topo, states, d.dest(), topo.n(), 0, 0);
    return states;
}

SwitchStates
waksmanSetupSeeded(const BenesTopology &topo, const Permutation &d,
                   std::uint64_t seed)
{
    auto states = waksmanSetupPinned(topo, d, {}, seed);
    if (!states)
        panic("unpinned seeded setup cannot fail");
    return std::move(*states);
}

std::optional<SwitchStates>
waksmanSetupPinned(const BenesTopology &topo, const Permutation &d,
                   const std::vector<StatePin> &pins,
                   std::uint64_t seed)
{
    if (d.size() != topo.numLines())
        fatal("permutation size %zu does not match network N = %llu",
              d.size(),
              static_cast<unsigned long long>(topo.numLines()));
    for (const StatePin &pin : pins)
        if (pin.stage >= topo.numStages() ||
            pin.switch_index >= topo.switchesPerStage())
            fatal("pin at stage %u switch %llu out of range",
                  pin.stage,
                  static_cast<unsigned long long>(pin.switch_index));

    SwitchStates states = topo.makeStates();
    if (!setupRecursivePinned(topo, states, d.dest(), topo.n(), 0, 0,
                              pins, seed))
        return std::nullopt;
    return states;
}

} // namespace srbenes
