/**
 * @file
 * Pipelined operation of the self-routing network (Section IV).
 *
 * "By providing registers between the stages of B(n), the network may
 * operate in pipelined mode. That is, a new N-element vector may
 * enter the network every clock-period." Each in-flight vector
 * carries its own destination tags, so consecutive vectors may use
 * different permutations. The first permuted vector emerges after
 * 2n-1 clocks (the O(log N) fill delay); every later one after a
 * single additional clock.
 */

#ifndef SRBENES_CORE_PIPELINE_HH
#define SRBENES_CORE_PIPELINE_HH

#include <deque>
#include <optional>
#include <vector>

#include "core/topology.hh"
#include "obs/metrics.hh"
#include "perm/permutation.hh"

namespace srbenes
{

/** A vector emerging from the pipelined network. */
struct PipelineOutput
{
    bool success = false;            //!< all tags reached their index
    std::vector<Word> output_tags;   //!< tag at each output terminal
    std::vector<Word> payloads;      //!< payloads in output order
};

class PipelinedBenes
{
  public:
    /**
     * @param metrics registry receiving this pipeline's instruments
     *        (ticks, injects, emerges, in-flight gauge, drain-depth
     *        histogram). nullptr disables instrumentation.
     */
    explicit PipelinedBenes(unsigned n,
                            obs::MetricsRegistry *metrics =
                                obs::defaultRegistry());

    const BenesTopology &topology() const { return topo_; }

    /** Fill latency in clocks: the 2n-1 stages. */
    unsigned latency() const { return topo_.numStages(); }

    /**
     * Queue an (tags, payloads) vector for injection; one queued
     * vector enters the first stage per clock.
     */
    void inject(const Permutation &d, std::vector<Word> payloads);

    /**
     * Advance one clock: every stage register moves forward by one
     * stage; returns the vector leaving the last stage, if any.
     * Steady-state ticks are allocation-free: stage registers are
     * fixed storage latched in place, and drained injection frames
     * are recycled for the next inject().
     */
    std::optional<PipelineOutput> clockTick();

    /**
     * Tick until every queued and in-flight vector has left the
     * network; returns the emerging vectors in output order.
     */
    std::vector<PipelineOutput> drain();

    /** Clocks elapsed since construction. */
    std::uint64_t cyclesElapsed() const { return cycles_; }

    /** True iff no vector is in flight and none is queued. */
    bool drained() const;

  private:
    struct Signal
    {
        Word tag;
        Word payload;
    };
    using Frame = std::vector<Signal>;

    /** Apply stage @p s's exchanges to its register, in place. */
    void exchange(Frame &frame, unsigned s) const;

    BenesTopology topo_;
    /**
     * regs_[s]: the register at the input of stage s. Storage is
     * allocated once at construction (numStages() frames of N
     * signals) and never reallocated; full_[s] tracks occupancy.
     */
    std::vector<Frame> regs_;
    std::vector<std::uint8_t> full_;
    std::deque<Frame> pending_;
    /** Drained injection frames, reused by inject(). */
    std::vector<Frame> spare_;
    std::uint64_t cycles_ = 0;

    /** @{ Observability (obs/metrics.hh); null when disabled. */
    obs::Counter *ticks_ = nullptr;
    obs::Counter *injects_ = nullptr;
    obs::Counter *emerges_ = nullptr;
    obs::Gauge *in_flight_ = nullptr;
    obs::Histogram *drain_depth_ = nullptr;
    /** @} */

    /** Vectors queued plus occupying a stage register. */
    std::uint64_t inFlight() const;
};

} // namespace srbenes

#endif // SRBENES_CORE_PIPELINE_HH
