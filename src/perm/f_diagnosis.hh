/**
 * @file
 * Failure diagnosis for permutations outside F(n).
 *
 * inFClass() answers yes/no; applications retrofitting a workload
 * onto the self-routing fabric want to know WHERE a permutation
 * leaves the class. Theorem 1's recursion localizes it exactly: the
 * first recursion level at which the upper or lower tag sequence
 * stops being a permutation, the offending subnetwork, and the two
 * switch positions whose outputs collide (both deliver tags with
 * the same high bits into one subnetwork input... terminal).
 */

#ifndef SRBENES_PERM_F_DIAGNOSIS_HH
#define SRBENES_PERM_F_DIAGNOSIS_HH

#include <optional>
#include <string>

#include "perm/permutation.hh"

namespace srbenes
{

/** Where a permutation first violates Theorem 1's condition. */
struct FDiagnosis
{
    /** Recursion level = stage index of the opening stage whose
     *  split fails (0 = the outermost stage). */
    unsigned level;
    /** Which B(n-level) subnetwork at that level (top to bottom). */
    Word subnetwork;
    /** True if the collision is in the tags bound for the UPPER
     *  child, false for the lower. */
    bool upper_child;
    /** The duplicated high-bits value: two signals both want the
     *  child's output group with this index. */
    Word colliding_value;
    /** The two switch indices (local to the subnetwork) whose
     *  selected outputs collide. */
    Word first_switch;
    Word second_switch;

    std::string toString() const;
};

/**
 * Diagnose @p perm: std::nullopt iff it is in F(n) (agrees with
 * inFClass); otherwise the FIRST violation in a deterministic
 * level-then-subnetwork-then-value order.
 */
std::optional<FDiagnosis> diagnoseNonMembership(
    const Permutation &perm);

} // namespace srbenes

#endif // SRBENES_PERM_F_DIAGNOSIS_HH
