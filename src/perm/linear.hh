/**
 * @file
 * GF(2)-affine permutations: D_i = A i xor c with A an invertible
 * 0/1 matrix over GF(2).
 *
 * This class strictly contains BPC(n) (a BPC vector is a signed
 * permutation matrix) and adds practically important reorderings the
 * paper's classes miss, e.g. the Gray-code reordering
 * i -> i xor (i >> 1) and single butterfly exchanges. The library
 * provides the algebra (apply, compose, invert over GF(2)), named
 * generators, a recognizer, and -- as an extension experiment
 * (bench_linear_class) -- an empirical census of how much of the
 * affine class the self-routing network captures, a question the
 * paper leaves open.
 *
 * Matrix convention: column j of A (an n-bit Word) is the image of
 * unit vector e_j, so apply(i) = xor of columns selected by the set
 * bits of i, xor c.
 */

#ifndef SRBENES_PERM_LINEAR_HH
#define SRBENES_PERM_LINEAR_HH

#include <optional>
#include <string>
#include <vector>

#include "common/prng.hh"
#include "perm/bpc.hh"
#include "perm/permutation.hh"

namespace srbenes
{

class LinearSpec
{
  public:
    /**
     * Build from matrix columns and offset; fatal()s unless the
     * matrix is invertible over GF(2).
     */
    LinearSpec(std::vector<Word> columns, Word offset);

    /** The identity transform on n bits. */
    static LinearSpec identity(unsigned n);

    /** A uniform random invertible affine transform. */
    static LinearSpec random(unsigned n, Prng &prng);

    /** Embed a BPC spec (signed permutation matrix + complement
     *  offset). */
    static LinearSpec fromBpc(const BpcSpec &spec);

    /** Gray-code reordering: D_i = i xor (i >> 1). */
    static LinearSpec grayCode(unsigned n);

    /** Inverse Gray-code reordering (prefix-xor matrix). */
    static LinearSpec inverseGrayCode(unsigned n);

    /** Butterfly exchange: swap index bits 0 and k (a BPC member,
     *  provided for FFT-style call sites). */
    static LinearSpec butterfly(unsigned n, unsigned k);

    unsigned n() const
    {
        return static_cast<unsigned>(columns_.size());
    }
    const std::vector<Word> &columns() const { return columns_; }
    Word offset() const { return offset_; }

    /** D_i = A i xor c. */
    Word apply(Word i) const;

    /** Expand to the explicit permutation of 2^n elements. */
    Permutation toPermutation() const;

    /** The inverse affine transform (Gauss-Jordan over GF(2)). */
    LinearSpec inverse() const;

    /** Sequential composition: this first, then other. */
    LinearSpec then(const LinearSpec &other) const;

    bool operator==(const LinearSpec &other) const = default;

    /** Render as columns + offset in hex. */
    std::string toString() const;

    /** True iff the columns form an invertible GF(2) matrix. */
    static bool invertible(const std::vector<Word> &columns);

  private:
    std::vector<Word> columns_;
    Word offset_;
};

/**
 * Recognize an affine permutation: returns its spec iff
 * perm[i] = perm[0] xor A i for a consistent invertible A.
 * O(N log N).
 */
std::optional<LinearSpec> recognizeLinear(const Permutation &perm);

} // namespace srbenes

#endif // SRBENES_PERM_LINEAR_HH
