#include "perm/cycles.hh"

#include <numeric>

#include "common/logging.hh"

namespace srbenes
{

std::vector<std::vector<Word>>
cycleDecomposition(const Permutation &perm)
{
    std::vector<std::vector<Word>> cycles;
    std::vector<bool> seen(perm.size(), false);
    for (Word start = 0; start < perm.size(); ++start) {
        if (seen[start] || perm[start] == start) {
            seen[start] = true;
            continue;
        }
        std::vector<Word> cycle;
        Word x = start;
        while (!seen[x]) {
            seen[x] = true;
            cycle.push_back(x);
            x = perm[x];
        }
        cycles.push_back(std::move(cycle));
    }
    return cycles;
}

Permutation
fromCycles(std::size_t size,
           const std::vector<std::vector<Word>> &cycles)
{
    std::vector<Word> dest(size);
    std::iota(dest.begin(), dest.end(), Word{0});
    std::vector<bool> used(size, false);
    for (const auto &cycle : cycles) {
        for (std::size_t k = 0; k < cycle.size(); ++k) {
            const Word from = cycle[k];
            const Word to = cycle[(k + 1) % cycle.size()];
            if (from >= size)
                fatal("cycle element %llu out of range",
                      static_cast<unsigned long long>(from));
            if (used[from])
                fatal("element %llu appears in two cycles",
                      static_cast<unsigned long long>(from));
            used[from] = true;
            dest[from] = to;
        }
    }
    return Permutation(std::move(dest));
}

namespace
{

std::uint64_t
gcd64(std::uint64_t a, std::uint64_t b)
{
    while (b != 0) {
        const std::uint64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

} // namespace

std::uint64_t
permutationOrder(const Permutation &perm)
{
    std::uint64_t order = 1;
    for (const auto &cycle : cycleDecomposition(perm)) {
        const std::uint64_t len = cycle.size();
        order = order / gcd64(order, len) * len;
    }
    return order;
}

bool
isEvenPermutation(const Permutation &perm)
{
    std::size_t transpositions = 0;
    for (const auto &cycle : cycleDecomposition(perm))
        transpositions += cycle.size() - 1;
    return transpositions % 2 == 0;
}

std::size_t
countFixedPoints(const Permutation &perm)
{
    std::size_t fixed = 0;
    for (Word i = 0; i < perm.size(); ++i)
        fixed += perm[i] == i;
    return fixed;
}

Permutation
permutationPower(const Permutation &perm, std::uint64_t k)
{
    Permutation result = Permutation::identity(perm.size());
    Permutation base = perm;
    while (k != 0) {
        if (k & 1)
            result = result.then(base);
        base = base.then(base);
        k >>= 1;
    }
    return result;
}

std::string
toCycleString(const Permutation &perm)
{
    const auto cycles = cycleDecomposition(perm);
    if (cycles.empty())
        return "()";
    std::string s;
    for (const auto &cycle : cycles) {
        s += "(";
        for (std::size_t k = 0; k < cycle.size(); ++k) {
            if (k)
                s += " ";
            s += std::to_string(cycle[k]);
        }
        s += ")";
    }
    return s;
}

} // namespace srbenes
