#include "perm/permutation.hh"

#include <numeric>

#include "common/logging.hh"

namespace srbenes
{

Permutation
Permutation::identity(std::size_t n)
{
    std::vector<Word> d(n);
    std::iota(d.begin(), d.end(), Word{0});
    return Permutation(std::move(d));
}

Permutation
Permutation::random(std::size_t n, Prng &prng)
{
    std::vector<Word> d(n);
    std::iota(d.begin(), d.end(), Word{0});
    // Fisher-Yates with our deterministic generator.
    for (std::size_t i = n; i > 1; --i)
        std::swap(d[i - 1], d[prng.below(i)]);
    return Permutation(std::move(d));
}

Permutation::Permutation(std::vector<Word> dest)
    : dest_(std::move(dest))
{
    if (!isValid(dest_))
        fatal("vector of size %zu is not a permutation of 0..N-1",
              dest_.size());
}

Permutation::Permutation(std::initializer_list<Word> dest)
    : Permutation(std::vector<Word>(dest))
{
}

bool
Permutation::isValid(const std::vector<Word> &dest)
{
    if (dest.empty())
        return false;
    std::vector<bool> seen(dest.size(), false);
    for (Word d : dest) {
        if (d >= dest.size() || seen[d])
            return false;
        seen[d] = true;
    }
    return true;
}

unsigned
Permutation::log2Size() const
{
    return exactLog2(static_cast<Word>(dest_.size()));
}

Permutation
Permutation::inverse() const
{
    std::vector<Word> inv(dest_.size());
    for (std::size_t i = 0; i < dest_.size(); ++i)
        inv[dest_[i]] = static_cast<Word>(i);
    return Permutation(std::move(inv));
}

Permutation
Permutation::then(const Permutation &other) const
{
    if (other.size() != size())
        fatal("composing permutations of sizes %zu and %zu", size(),
              other.size());
    std::vector<Word> out(dest_.size());
    for (std::size_t i = 0; i < dest_.size(); ++i)
        out[i] = other.dest_[dest_[i]];
    return Permutation(std::move(out));
}

std::string
Permutation::toString() const
{
    std::string s = "(";
    for (std::size_t i = 0; i < dest_.size(); ++i) {
        if (i)
            s += ", ";
        s += std::to_string(dest_[i]);
    }
    s += ")";
    return s;
}

} // namespace srbenes
