#include "perm/linear.hh"

#include <bit>
#include <sstream>

#include "common/logging.hh"

namespace srbenes
{

namespace
{

/**
 * Gauss-Jordan over GF(2). Returns the inverse columns of @p a, or
 * nothing if singular. Columns are n-bit Words.
 */
std::optional<std::vector<Word>>
invertColumns(std::vector<Word> a)
{
    const unsigned n = static_cast<unsigned>(a.size());
    // inv starts as identity; we row-reduce a to identity applying
    // the same column operations... working in column-vector form,
    // it is easiest to treat a[j] as column j and eliminate by rows.
    std::vector<Word> inv(n);
    for (unsigned j = 0; j < n; ++j)
        inv[j] = Word{1} << j;

    // Forward elimination with partial pivoting by row r.
    for (unsigned r = 0; r < n; ++r) {
        // Find a column >= r with bit r set.
        unsigned pivot = r;
        while (pivot < n && bit(a[pivot], r) == 0)
            ++pivot;
        if (pivot == n)
            return std::nullopt;
        std::swap(a[r], a[pivot]);
        std::swap(inv[r], inv[pivot]);
        // Clear bit r from every other column.
        for (unsigned j = 0; j < n; ++j) {
            if (j != r && bit(a[j], r)) {
                a[j] ^= a[r];
                inv[j] ^= inv[r];
            }
        }
    }
    // a is now a column permutation... no: after full elimination
    // each column r has exactly bit r set, i.e. a = I, and inv holds
    // A^-1 column-wise.
    return inv;
}

} // namespace

bool
LinearSpec::invertible(const std::vector<Word> &columns)
{
    return invertColumns(columns).has_value();
}

LinearSpec::LinearSpec(std::vector<Word> columns, Word offset)
    : columns_(std::move(columns)), offset_(offset)
{
    const unsigned width = static_cast<unsigned>(columns_.size());
    if (width == 0 || width > 63)
        fatal("linear spec width %u unsupported", width);
    for (Word c : columns_)
        if (c > lowMask(width))
            fatal("linear spec column exceeds %u bits", width);
    if (offset_ > lowMask(width))
        fatal("linear spec offset exceeds %u bits", width);
    if (!invertible(columns_))
        fatal("linear spec matrix is singular over GF(2)");
}

LinearSpec
LinearSpec::identity(unsigned n)
{
    std::vector<Word> cols(n);
    for (unsigned j = 0; j < n; ++j)
        cols[j] = Word{1} << j;
    return LinearSpec(std::move(cols), 0);
}

LinearSpec
LinearSpec::random(unsigned n, Prng &prng)
{
    // Rejection sampling: a random GF(2) matrix is invertible with
    // probability > 0.28 for every n, so a few draws suffice.
    for (;;) {
        std::vector<Word> cols(n);
        for (unsigned j = 0; j < n; ++j)
            cols[j] = prng.below(Word{1} << n);
        if (invertible(cols))
            return LinearSpec(std::move(cols),
                              prng.below(Word{1} << n));
    }
}

LinearSpec
LinearSpec::fromBpc(const BpcSpec &spec)
{
    const unsigned n = spec.n();
    std::vector<Word> cols(n);
    Word offset = 0;
    for (unsigned j = 0; j < n; ++j) {
        cols[j] = Word{1} << spec.axis(j).position;
        if (spec.axis(j).complement)
            offset |= Word{1} << spec.axis(j).position;
    }
    return LinearSpec(std::move(cols), offset);
}

LinearSpec
LinearSpec::grayCode(unsigned n)
{
    // D = i xor (i >> 1): column j contributes to bits j and j-1.
    std::vector<Word> cols(n);
    for (unsigned j = 0; j < n; ++j) {
        cols[j] = Word{1} << j;
        if (j > 0)
            cols[j] |= Word{1} << (j - 1);
    }
    return LinearSpec(std::move(cols), 0);
}

LinearSpec
LinearSpec::inverseGrayCode(unsigned n)
{
    // The inverse of the Gray map is the suffix-xor: bit t of D is
    // the xor of bits t..n-1 of i, so column j feeds bits 0..j.
    std::vector<Word> cols(n);
    for (unsigned j = 0; j < n; ++j)
        cols[j] = lowMask(j + 1);
    return LinearSpec(std::move(cols), 0);
}

LinearSpec
LinearSpec::butterfly(unsigned n, unsigned k)
{
    if (k == 0 || k >= n)
        fatal("butterfly needs 1 <= k <= n-1, got k = %u", k);
    std::vector<Word> cols(n);
    for (unsigned j = 0; j < n; ++j)
        cols[j] = Word{1} << j;
    std::swap(cols[0], cols[k]);
    return LinearSpec(std::move(cols), 0);
}

Word
LinearSpec::apply(Word i) const
{
    Word d = offset_;
    for (Word rest = i; rest != 0; rest &= rest - 1)
        d ^= columns_[std::countr_zero(rest)];
    return d;
}

Permutation
LinearSpec::toPermutation() const
{
    const Word size = Word{1} << n();
    std::vector<Word> dest(size);
    for (Word i = 0; i < size; ++i)
        dest[i] = apply(i);
    return Permutation(std::move(dest));
}

LinearSpec
LinearSpec::inverse() const
{
    auto inv = invertColumns(columns_);
    if (!inv)
        panic("validated linear spec became singular");
    // D = A i xor c  =>  i = A^-1 D xor A^-1 c.
    Word inv_offset = 0;
    for (Word rest = offset_; rest != 0; rest &= rest - 1)
        inv_offset ^= (*inv)[std::countr_zero(rest)];
    return LinearSpec(std::move(*inv), inv_offset);
}

LinearSpec
LinearSpec::then(const LinearSpec &other) const
{
    if (other.n() != n())
        fatal("composing linear specs of widths %u and %u", n(),
              other.n());
    // E(i) = B(A i xor c) xor d = (BA) i xor (B c xor d).
    std::vector<Word> cols(n());
    for (unsigned j = 0; j < n(); ++j) {
        Word col = 0;
        for (Word rest = columns_[j]; rest != 0; rest &= rest - 1)
            col ^= other.columns_[std::countr_zero(rest)];
        cols[j] = col;
    }
    Word off = other.offset_;
    for (Word rest = offset_; rest != 0; rest &= rest - 1)
        off ^= other.columns_[std::countr_zero(rest)];
    return LinearSpec(std::move(cols), off);
}

std::string
LinearSpec::toString() const
{
    std::ostringstream os;
    os << "A=[";
    for (unsigned j = 0; j < n(); ++j) {
        if (j)
            os << ",";
        os << std::hex << columns_[j];
    }
    os << "] c=" << std::hex << offset_;
    return os.str();
}

std::optional<LinearSpec>
recognizeLinear(const Permutation &perm)
{
    const unsigned n = perm.log2Size();
    const Word c = perm[0];
    std::vector<Word> cols(n);
    for (unsigned j = 0; j < n; ++j)
        cols[j] = perm[Word{1} << j] ^ c;
    if (!LinearSpec::invertible(cols))
        return std::nullopt;

    LinearSpec spec(std::move(cols), c);
    for (Word i = 0; i < perm.size(); ++i)
        if (spec.apply(i) != perm[i])
            return std::nullopt;
    return spec;
}

} // namespace srbenes
