/**
 * @file
 * The omega and inverse-omega permutation classes (Lawrie), Section II.
 *
 * Omega(n) is the set of permutations realizable on Lawrie's omega
 * network (n shuffle-exchange stages); inverse-omega is the set
 * realizable running that network backwards. The paper proves
 * InverseOmega(n) is a subset of F(n) (Theorem 3) and that Omega(n)
 * permutations route through the self-routing Benes network when its
 * first n-1 stages are forced to state 0 (the "omega bit").
 *
 * Membership predicates here use Lawrie's window conditions:
 *
 *   D in Omega(n)        iff for all i != j and 1 <= t <= n-1, not
 *                        (i = j mod 2^t and D_i >> t = D_j >> t);
 *   D in InverseOmega(n) iff for all i != j and 1 <= t <= n-1, not
 *                        (D_i = D_j mod 2^t and i >> t = j >> t).
 *
 * The tests cross-validate both predicates against an actual omega
 * network simulation (src/networks/omega_network.hh).
 *
 * Also included: the paper's list of interesting inverse-omega
 * permutations -- cyclic shift, p-ordering, inverse p-ordering,
 * p-ordering-plus-shift (Lenfant's FUB lambda), cyclic shift within
 * segments (FUB delta), and conditional exchange (FUB eta).
 */

#ifndef SRBENES_PERM_OMEGA_CLASS_HH
#define SRBENES_PERM_OMEGA_CLASS_HH

#include "perm/permutation.hh"

namespace srbenes
{

/** True iff @p perm is realizable on an omega network. O(N log N). */
bool isOmega(const Permutation &perm);

/** True iff @p perm is realizable on an inverse omega network. */
bool isInverseOmega(const Permutation &perm);

namespace named
{

/** Cyclic shift: D_i = (i + k) mod N. */
Permutation cyclicShift(unsigned n, Word k);

/** p-ordering: D_i = (p * i) mod N; p must be odd. */
Permutation pOrdering(unsigned n, Word p);

/**
 * Inverse p-ordering: the q-ordering with p * q = 1 mod N, which
 * unscrambles pOrdering(n, p); p must be odd.
 */
Permutation inversePOrdering(unsigned n, Word p);

/**
 * p-ordering combined with a cyclic shift, Lenfant's FUB family
 * lambda(n): D_i = (p * i + k) mod N; p must be odd.
 */
Permutation pOrderingShift(unsigned n, Word p, Word k);

/**
 * Cyclic shift by @p k within each segment of size 2^seg_bits,
 * Lenfant's FUB family delta(n): the high n - seg_bits index bits are
 * fixed, the low seg_bits bits are shifted mod 2^seg_bits.
 */
Permutation segmentCyclicShift(unsigned n, unsigned seg_bits, Word k);

/**
 * Conditional exchange, Lenfant's eta: pairs (2i, 2i+1) are swapped
 * iff bit @p k of the index is one; 1 <= k <= n-1.
 */
Permutation conditionalExchange(unsigned n, unsigned k);

/** Modular inverse of odd @p p modulo 2^n (helper, exposed for
 *  tests). */
Word oddInverseMod2n(Word p, unsigned n);

} // namespace named

} // namespace srbenes

#endif // SRBENES_PERM_OMEGA_CLASS_HH
