#include "perm/f_class.hh"

#include "common/logging.hh"

namespace srbenes
{

std::pair<std::vector<Word>, std::vector<Word>>
splitStageZero(const std::vector<Word> &tags)
{
    if (tags.size() % 2 != 0)
        panic("splitStageZero needs an even tag count");
    const std::size_t half = tags.size() / 2;
    std::vector<Word> upper(half), lower(half);
    for (std::size_t i = 0; i < half; ++i) {
        // Eq. (1)/(2): state is bit 0 of the upper input's tag.
        if (bit(tags[2 * i], 0) == 0) {
            upper[i] = tags[2 * i];
            lower[i] = tags[2 * i + 1];
        } else {
            upper[i] = tags[2 * i + 1];
            lower[i] = tags[2 * i];
        }
    }
    return {std::move(upper), std::move(lower)};
}

namespace
{

/**
 * Check that dropping the low bit of each tag yields a permutation of
 * 0..half-1, writing the shifted tags into @p out.
 */
bool
shiftIsPermutation(const std::vector<Word> &tags, std::vector<Word> &out)
{
    out.resize(tags.size());
    std::vector<bool> seen(tags.size(), false);
    for (std::size_t i = 0; i < tags.size(); ++i) {
        const Word v = tags[i] >> 1;
        if (v >= tags.size() || seen[v])
            return false;
        seen[v] = true;
        out[i] = v;
    }
    return true;
}

bool
inFRecursive(const std::vector<Word> &tags, unsigned n)
{
    if (n <= 1)
        return true; // F(1) contains both permutations of (0, 1).

    auto [upper_full, lower_full] = splitStageZero(tags);

    std::vector<Word> upper, lower;
    if (!shiftIsPermutation(upper_full, upper))
        return false;
    if (!shiftIsPermutation(lower_full, lower))
        return false;

    return inFRecursive(upper, n - 1) && inFRecursive(lower, n - 1);
}

} // namespace

bool
inFClassTags(const std::vector<Word> &tags, unsigned n)
{
    if (tags.size() != (std::size_t{1} << n))
        panic("tag vector size %zu does not match n = %u", tags.size(),
              n);
    return inFRecursive(tags, n);
}

bool
inFClass(const Permutation &perm)
{
    return inFClassTags(perm.dest(), perm.log2Size());
}

namespace
{

/** Recursive worker returning the destination-tag vector of a random
 *  F(n) member. */
std::vector<Word>
sampleF(unsigned n, Prng &prng)
{
    if (n == 1) {
        if (prng.below(2))
            return {1, 0};
        return {0, 1};
    }

    const std::size_t half = std::size_t{1} << (n - 1);
    const std::vector<Word> u = sampleF(n - 1, prng);
    const std::vector<Word> l = sampleF(n - 1, prng);

    // a[v] = low tag bit of the signal with high bits v entering the
    // UPPER subnetwork (the lower one with the same high bits gets
    // the complement). A stage-0 switch i can only be realized when
    // not both a[u[i]] and a[l[i]] are 1 (some orientation must obey
    // the Fig. 3 rule), so repair random bits by clearing one of any
    // offending pair -- clearing never creates new violations.
    std::vector<std::uint8_t> a(half);
    for (std::size_t v = 0; v < half; ++v)
        a[v] = static_cast<std::uint8_t>(prng.below(2));
    for (std::size_t i = 0; i < half; ++i)
        if (a[u[i]] && a[l[i]])
            a[prng.below(2) ? u[i] : l[i]] = 0;

    std::vector<Word> tags(2 * half);
    for (std::size_t i = 0; i < half; ++i) {
        const Word tu = 2 * u[i] + a[u[i]];           // upper input i
        const Word tl = 2 * l[i] + (1 - a[l[i]]);     // lower input i
        // Orientation A (switch straight) needs bit0(tu) = 0;
        // orientation B (crossed) needs bit0(tl) = 1.
        const bool a_ok = (tu & 1) == 0;
        const bool b_ok = (tl & 1) == 1;
        const bool crossed = a_ok && b_ok ? prng.below(2) : b_ok;
        if (crossed) {
            tags[2 * i] = tl;
            tags[2 * i + 1] = tu;
        } else {
            tags[2 * i] = tu;
            tags[2 * i + 1] = tl;
        }
    }
    return tags;
}

} // namespace

Permutation
randomFMember(unsigned n, Prng &prng)
{
    if (n == 0)
        panic("randomFMember requires n >= 1");
    return Permutation(sampleF(n, prng));
}

} // namespace srbenes
