#include "perm/bpc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace srbenes
{

namespace
{

bool
positionsFormPermutation(const std::vector<BpcAxis> &axes)
{
    std::vector<bool> seen(axes.size(), false);
    for (const auto &a : axes) {
        if (a.position >= axes.size() || seen[a.position])
            return false;
        seen[a.position] = true;
    }
    return true;
}

} // namespace

BpcSpec::BpcSpec(std::vector<BpcAxis> axes)
    : axes_(std::move(axes))
{
    if (axes_.empty())
        fatal("BPC spec must have at least one axis");
    if (!positionsFormPermutation(axes_))
        fatal("BPC positions are not a permutation of 0..n-1");
}

BpcSpec
BpcSpec::fromPaper(const std::vector<std::string> &entries)
{
    const unsigned n = static_cast<unsigned>(entries.size());
    std::vector<BpcAxis> axes(n);
    for (unsigned t = 0; t < n; ++t) {
        // entries[t] is A_{n-1-t} in the paper's left-to-right order.
        const std::string &e = entries[t];
        if (e.empty())
            fatal("empty BPC entry");
        bool comp = false;
        std::size_t pos = 0;
        if (e[0] == '-') {
            comp = true;
            pos = 1;
        } else if (e[0] == '+') {
            pos = 1;
        }
        if (pos >= e.size())
            fatal("malformed BPC entry '%s'", e.c_str());
        unsigned value = 0;
        for (; pos < e.size(); ++pos) {
            if (e[pos] < '0' || e[pos] > '9')
                fatal("malformed BPC entry '%s'", e.c_str());
            value = value * 10 + static_cast<unsigned>(e[pos] - '0');
        }
        axes[n - 1 - t] = BpcAxis{value, comp};
    }
    return BpcSpec(std::move(axes));
}

BpcSpec
BpcSpec::identity(unsigned n)
{
    std::vector<BpcAxis> axes(n);
    for (unsigned j = 0; j < n; ++j)
        axes[j] = BpcAxis{j, false};
    return BpcSpec(std::move(axes));
}

BpcSpec
BpcSpec::random(unsigned n, Prng &prng)
{
    std::vector<unsigned> pos(n);
    for (unsigned j = 0; j < n; ++j)
        pos[j] = j;
    for (unsigned j = n; j > 1; --j)
        std::swap(pos[j - 1], pos[prng.below(j)]);
    std::vector<BpcAxis> axes(n);
    for (unsigned j = 0; j < n; ++j)
        axes[j] = BpcAxis{pos[j], prng.below(2) == 1};
    return BpcSpec(std::move(axes));
}

Word
BpcSpec::destinationOf(Word i) const
{
    Word d = 0;
    for (unsigned j = 0; j < n(); ++j) {
        const Word src = bit(i, j) ^ (axes_[j].complement ? 1u : 0u);
        d |= src << axes_[j].position;
    }
    return d;
}

Permutation
BpcSpec::toPermutation() const
{
    const Word size = Word{1} << n();
    std::vector<Word> dest(size);
    for (Word i = 0; i < size; ++i)
        dest[i] = destinationOf(i);
    return Permutation(std::move(dest));
}

BpcSpec
BpcSpec::inverse() const
{
    // If bit j of i becomes bit p of D (xor c), then bit p of D
    // becomes bit j of i (xor c).
    std::vector<BpcAxis> axes(n());
    for (unsigned j = 0; j < n(); ++j)
        axes[axes_[j].position] = BpcAxis{j, axes_[j].complement};
    return BpcSpec(std::move(axes));
}

BpcSpec
BpcSpec::then(const BpcSpec &other) const
{
    if (other.n() != n())
        fatal("composing BPC specs of widths %u and %u", n(), other.n());
    std::vector<BpcAxis> axes(n());
    for (unsigned j = 0; j < n(); ++j) {
        const BpcAxis &first = axes_[j];
        const BpcAxis &second = other.axes_[first.position];
        axes[j] = BpcAxis{second.position,
                          first.complement != second.complement};
    }
    return BpcSpec(std::move(axes));
}

std::pair<BpcSpec, BpcSpec>
BpcSpec::decompose() const
{
    if (n() < 2)
        panic("decompose requires n >= 2");

    // k is the source bit feeding destination bit 0 (|A_k| = 0).
    unsigned k = 0;
    while (axes_[k].position != 0)
        ++k;

    const unsigned m = n() - 1;
    std::vector<BpcAxis> sub(m);

    if (k == 0) {
        // Theorem 2, case 1: U and L carry the same BPC(n-1)
        // permutation A' with A'_j = LMAG(A_{j+1}).
        for (unsigned j = 1; j < n(); ++j)
            sub[j - 1] = BpcAxis{axes_[j].position - 1,
                                 axes_[j].complement};
        BpcSpec s(std::move(sub));
        return {s, s};
    }

    // Lemma 1: vector B for F1; C differs only in the complement of
    // entry k-1.
    for (unsigned j = 1; j < n(); ++j) {
        if (j == k)
            continue;
        sub[j - 1] = BpcAxis{axes_[j].position - 1, axes_[j].complement};
    }
    sub[k - 1] = BpcAxis{axes_[0].position - 1, axes_[0].complement};

    BpcSpec f1(sub);
    sub[k - 1].complement = !sub[k - 1].complement;
    BpcSpec f2(std::move(sub));

    // Theorem 2, case 2: with A_k = +0, U = F1 and L = F2; with
    // A_k = -0 the roles swap.
    if (!axes_[k].complement)
        return {f1, f2};
    return {f2, f1};
}

std::string
BpcSpec::toString() const
{
    std::string s = "(";
    for (unsigned t = 0; t < n(); ++t) {
        const BpcAxis &a = axes_[n() - 1 - t];
        if (t)
            s += ", ";
        if (a.complement)
            s += "-";
        s += std::to_string(a.position);
    }
    s += ")";
    return s;
}

std::optional<BpcSpec>
recognizeBpc(const Permutation &perm)
{
    const unsigned n = perm.log2Size();
    const Word d0 = perm[0];

    std::vector<BpcAxis> axes(n);
    std::vector<bool> used(n, false);
    for (unsigned j = 0; j < n; ++j) {
        const Word diff = perm[Word{1} << j] ^ d0;
        if (!isPowerOfTwo(diff))
            return std::nullopt;
        const unsigned p = floorLog2(diff);
        if (used[p])
            return std::nullopt;
        used[p] = true;
        axes[j] = BpcAxis{p, bit(d0, p) != 0};
    }

    BpcSpec spec(std::move(axes));
    for (Word i = 0; i < perm.size(); ++i)
        if (spec.destinationOf(i) != perm[i])
            return std::nullopt;
    return spec;
}

} // namespace srbenes
