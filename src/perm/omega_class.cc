#include "perm/omega_class.hh"

#include "common/logging.hh"

namespace srbenes
{

namespace
{

/**
 * Shared window test: no two distinct elements may agree on both
 * key(i) mod 2^t and tag(i) >> t for any t in [1, n-1]. For each t we
 * hash the pair into a dense table of size N and look for duplicates.
 */
template <typename KeyFn, typename TagFn>
bool
windowsAreConflictFree(std::size_t size, unsigned n, KeyFn key,
                       TagFn tag)
{
    std::vector<bool> seen(size);
    for (unsigned t = 1; t < n; ++t) {
        std::fill(seen.begin(), seen.end(), false);
        for (std::size_t i = 0; i < size; ++i) {
            const Word low = key(i) & lowMask(t);
            const Word high = tag(i) >> t;
            const Word slot = (low << (n - t)) | high;
            if (seen[slot])
                return false;
            seen[slot] = true;
        }
    }
    return true;
}

} // namespace

bool
isOmega(const Permutation &perm)
{
    const unsigned n = perm.log2Size();
    if (n <= 1)
        return true;
    return windowsAreConflictFree(
        perm.size(), n, [](std::size_t i) { return Word(i); },
        [&](std::size_t i) { return perm[i]; });
}

bool
isInverseOmega(const Permutation &perm)
{
    const unsigned n = perm.log2Size();
    if (n <= 1)
        return true;
    return windowsAreConflictFree(
        perm.size(), n, [&](std::size_t i) { return perm[i]; },
        [](std::size_t i) { return Word(i); });
}

namespace named
{

Permutation
cyclicShift(unsigned n, Word k)
{
    const Word size = Word{1} << n;
    std::vector<Word> dest(size);
    for (Word i = 0; i < size; ++i)
        dest[i] = (i + k) & lowMask(n);
    return Permutation(std::move(dest));
}

Permutation
pOrdering(unsigned n, Word p)
{
    if (p % 2 == 0)
        fatal("p-ordering requires odd p, got %llu",
              static_cast<unsigned long long>(p));
    const Word size = Word{1} << n;
    std::vector<Word> dest(size);
    for (Word i = 0; i < size; ++i)
        dest[i] = (p * i) & lowMask(n);
    return Permutation(std::move(dest));
}

Word
oddInverseMod2n(Word p, unsigned n)
{
    if (p % 2 == 0)
        fatal("no inverse of even %llu mod 2^n",
              static_cast<unsigned long long>(p));
    // Newton iteration: q <- q (2 - p q), doubling correct bits.
    Word q = 1;
    for (unsigned round = 0; round < 6; ++round)
        q *= 2 - p * q;
    return q & lowMask(n);
}

Permutation
inversePOrdering(unsigned n, Word p)
{
    return pOrdering(n, oddInverseMod2n(p, n));
}

Permutation
pOrderingShift(unsigned n, Word p, Word k)
{
    if (p % 2 == 0)
        fatal("p-ordering requires odd p, got %llu",
              static_cast<unsigned long long>(p));
    const Word size = Word{1} << n;
    std::vector<Word> dest(size);
    for (Word i = 0; i < size; ++i)
        dest[i] = (p * i + k) & lowMask(n);
    return Permutation(std::move(dest));
}

Permutation
segmentCyclicShift(unsigned n, unsigned seg_bits, Word k)
{
    if (seg_bits > n)
        fatal("segment of 2^%u elements exceeds N = 2^%u", seg_bits, n);
    const Word size = Word{1} << n;
    const Word mask = lowMask(seg_bits);
    std::vector<Word> dest(size);
    for (Word i = 0; i < size; ++i)
        dest[i] = (i & ~mask) | ((i + k) & mask);
    return Permutation(std::move(dest));
}

Permutation
conditionalExchange(unsigned n, unsigned k)
{
    if (k < 1 || k >= n)
        fatal("conditional exchange needs 1 <= k <= n-1, got k = %u", k);
    const Word size = Word{1} << n;
    std::vector<Word> dest(size);
    for (Word i = 0; i < size; ++i)
        dest[i] = setBit(i, 0, bit(i, 0) ^ bit(i, k));
    return Permutation(std::move(dest));
}

} // namespace named

} // namespace srbenes
