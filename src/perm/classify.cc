#include "perm/classify.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/logging.hh"
#include "perm/bpc.hh"
#include "perm/f_class.hh"
#include "perm/omega_class.hh"
#include "perm/permutation.hh"

namespace srbenes
{

namespace
{

void
classifyOne(const Permutation &p, ClassCensus &census)
{
    ++census.total;
    if (inFClass(p))
        ++census.in_f;
    if (isOmega(p))
        ++census.in_omega;
    if (isInverseOmega(p))
        ++census.in_inverse;
    if (recognizeBpc(p))
        ++census.in_bpc;
}

} // namespace

ClassCensus
censusExhaustive(unsigned n)
{
    if (n > 3)
        fatal("exhaustive census over (2^%u)! permutations is "
              "infeasible; use censusSampled", n);

    std::vector<Word> dest(std::size_t{1} << n);
    std::iota(dest.begin(), dest.end(), Word{0});

    ClassCensus census;
    do {
        classifyOne(Permutation(dest), census);
    } while (std::next_permutation(dest.begin(), dest.end()));
    return census;
}

ClassCensus
censusSampled(unsigned n, std::uint64_t samples, Prng &prng)
{
    ClassCensus census;
    for (std::uint64_t s = 0; s < samples; ++s)
        classifyOne(Permutation::random(std::size_t{1} << n, prng),
                    census);
    return census;
}

long double
exactFCardinality(unsigned n)
{
    if (n == 0)
        fatal("F is defined for n >= 1");
    if (n == 1)
        return 2.0L;
    if (n > 4)
        fatal("exact |F(%u)| needs F(%u) enumeration, which is "
              "infeasible; largest supported n is 4", n, n - 1);

    // Enumerate F(n-1).
    const std::size_t half = std::size_t{1} << (n - 1);
    std::vector<std::vector<Word>> members;
    {
        std::vector<Word> dest(half);
        std::iota(dest.begin(), dest.end(), Word{0});
        do {
            if (inFClass(Permutation(dest)))
                members.push_back(dest);
        } while (std::next_permutation(dest.begin(), dest.end()));
    }

    // tr(M^L) for M = [[2,1],[1,0]]: t(1) = 2, t(2) = 6,
    // t(L) = 2 t(L-1) + t(L-2).
    std::vector<long double> trace(half + 1);
    if (half >= 1)
        trace[1] = 2.0L;
    if (half >= 2)
        trace[2] = 6.0L;
    for (std::size_t len = 3; len <= half; ++len)
        trace[len] = 2.0L * trace[len - 1] + trace[len - 2];

    // Weight of one (U, L) pair: cycles of U o L^-1 over the value
    // space (switch i links values U_i and L_i; following
    // L-role -> U-role alternation walks the cycles).
    long double total = 0.0L;
    std::vector<Word> linv(half);
    std::vector<bool> seen(half);
    for (const auto &u : members) {
        for (const auto &l : members) {
            for (std::size_t i = 0; i < half; ++i)
                linv[l[i]] = static_cast<Word>(i);
            std::fill(seen.begin(), seen.end(), false);
            long double weight = 1.0L;
            for (std::size_t v0 = 0; v0 < half; ++v0) {
                if (seen[v0])
                    continue;
                std::size_t len = 0;
                Word v = static_cast<Word>(v0);
                while (!seen[v]) {
                    seen[v] = true;
                    ++len;
                    v = u[linv[v]]; // value sharing v's L-switch
                }
                weight *= trace[len];
            }
            total += weight;
        }
    }
    return total;
}

std::uint64_t
bpcCardinality(unsigned n)
{
    std::uint64_t v = std::uint64_t{1} << n; // 2^n sign choices
    for (std::uint64_t j = 2; j <= n; ++j)
        v *= j; // times n! bit arrangements
    return v;
}

long double
omegaCardinality(unsigned n)
{
    // n stages of 2^(n-1) independent binary switches, each setting
    // realizing a distinct permutation.
    return std::pow(2.0L,
                    static_cast<long double>(n) *
                        static_cast<long double>(1ull << (n - 1)));
}

long double
factorial(std::uint64_t v)
{
    long double r = 1.0L;
    for (std::uint64_t k = 2; k <= v; ++k)
        r *= static_cast<long double>(k);
    return r;
}

} // namespace srbenes
