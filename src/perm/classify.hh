/**
 * @file
 * Permutation-class census utilities for the richness experiment (E3).
 *
 * Section II argues that F(n) is "rich" by showing it contains the
 * permutation classes that matter in practice (BPC, inverse omega,
 * Lenfant's FUB families). These helpers quantify the classes: exact
 * counts by exhaustive enumeration for small n, and sampled densities
 * for larger n, plus the closed-form cardinalities known for BPC and
 * omega.
 */

#ifndef SRBENES_PERM_CLASSIFY_HH
#define SRBENES_PERM_CLASSIFY_HH

#include <cstdint>

#include "common/prng.hh"

namespace srbenes
{

/** Tallies of class membership over a set of permutations. */
struct ClassCensus
{
    std::uint64_t total = 0;      //!< permutations examined
    std::uint64_t in_f = 0;       //!< members of F(n)
    std::uint64_t in_omega = 0;   //!< members of Omega(n)
    std::uint64_t in_inverse = 0; //!< members of InverseOmega(n)
    std::uint64_t in_bpc = 0;     //!< members of BPC(n)
};

/**
 * Exhaustively enumerate all (2^n)! permutations and classify each.
 * Feasible for n <= 3 (8! = 40320); fatal()s for larger n.
 */
ClassCensus censusExhaustive(unsigned n);

/** Classify @p samples uniform random permutations of 2^n elements. */
ClassCensus censusSampled(unsigned n, std::uint64_t samples, Prng &prng);

/** |BPC(n)| = 2^n * n! exactly (paper: "N log N of the possible N!"
 *  -- the closed form). */
std::uint64_t bpcCardinality(unsigned n);

/**
 * Exact |F(n)| by the transfer-matrix recurrence. Theorem 1 run
 * backwards parameterizes F(n) bijectively by (U, L, a, s): two
 * F(n-1) members, the low tag bit a_v given to the upper copy of
 * each high-value v, and per-switch orientations s. For fixed
 * (U, L) the valid (a, s) combinations factor over the cycles of
 * the value graph linking U- and L-roles, each cycle of length L
 * contributing tr(M^L) with M = [[2,1],[1,0]] (switch weights: two
 * orientations when both incident a-bits are 0, one when exactly
 * one is, none when both are 1). So
 *
 *   |F(n)| = sum over (U, L) in F(n-1)^2 of
 *            prod_cycles tr(M^len),   cycles of U o L^-1.
 *
 * Implemented by enumerating F(n-1); feasible for n <= 4 (F(3) has
 * 11632 members). Exhaustively cross-checked against brute force at
 * n <= 3; n = 4 yields the count that 16!-enumeration cannot reach.
 */
long double exactFCardinality(unsigned n);

/**
 * |Omega(n)| = |InverseOmega(n)| = 2^(n 2^(n-1)): every setting of the
 * omega network's n * N/2 switches realizes a distinct permutation.
 */
long double omegaCardinality(unsigned n);

/** N! as a long double (exact up to n = 3 sizes; used for ratios). */
long double factorial(std::uint64_t v);

} // namespace srbenes

#endif // SRBENES_PERM_CLASSIFY_HH
