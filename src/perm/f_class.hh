/**
 * @file
 * The class F(n) of self-routable permutations, Section II.
 *
 * F(n) is the set of permutations that the self-routing Benes network
 * B(n) realizes. Theorem 1 characterizes it recursively: D is in F(n)
 * iff the tag sequences U and L that the stage-0 switches deliver to
 * the upper and lower B(n-1) subnetworks (eqs. (1) and (2)) are, after
 * dropping their low bit, both permutations in F(n-1). This module
 * implements that test directly on tag vectors, independently of the
 * network simulator in src/core, so the two can cross-check each
 * other.
 */

#ifndef SRBENES_PERM_F_CLASS_HH
#define SRBENES_PERM_F_CLASS_HH

#include <utility>
#include <vector>

#include "perm/permutation.hh"

namespace srbenes
{

/**
 * Apply eqs. (1) and (2): run the tag vector @p tags (even length)
 * through one stage of self-set switches. Switch i sees tags[2i]
 * (upper) and tags[2i+1] (lower) and takes its state from bit 0 of
 * the upper tag. first = U (upper outputs), second = L (lower
 * outputs); both keep the full tag width (the caller drops bit 0).
 */
std::pair<std::vector<Word>, std::vector<Word>>
splitStageZero(const std::vector<Word> &tags);

/**
 * Theorem 1 membership test: true iff @p perm is in F(n),
 * N = 2^n = perm.size().
 */
bool inFClass(const Permutation &perm);

/**
 * Membership test on a raw tag vector of length 2^n whose entries are
 * interpreted as n-bit destination tags. Exposed so the recursion can
 * be exercised on the intermediate U/L vectors in tests.
 */
bool inFClassTags(const std::vector<Word> &tags, unsigned n);

/**
 * Sample a random member of F(n) constructively (rejection from S_N
 * is hopeless: F(n) is a vanishing fraction of N!). The sampler runs
 * Theorem 1 backwards: draw U, L from F(n-1), attach low tag bits,
 * and realize each stage-0 switch with a random valid orientation.
 * Every member of F(n) is reachable; the distribution is not exactly
 * uniform but has full support.
 */
Permutation randomFMember(unsigned n, Prng &prng);

} // namespace srbenes

#endif // SRBENES_PERM_F_CLASS_HH
