/**
 * @file
 * Named BPC permutations.
 *
 * Generators for every row of Table I of the paper (the "more popular
 * permutations in BPC(n)") plus parameterized families standing in for
 * Lenfant's FUB classes alpha/beta/gamma, which the paper cites as
 * members of BPC(n) without restating their definitions. Each
 * generator returns a BpcSpec; expand with BpcSpec::toPermutation().
 */

#ifndef SRBENES_PERM_NAMED_BPC_HH
#define SRBENES_PERM_NAMED_BPC_HH

#include <string>
#include <vector>

#include "perm/bpc.hh"

namespace srbenes::named
{

/**
 * Matrix transpose of the N^1/2 x N^1/2 array stored in row-major
 * order: swaps the row-bit and column-bit halves. Requires even n.
 */
BpcSpec matrixTranspose(unsigned n);

/** Bit reversal: destination is the reversed binary representation of
 *  the input (Fig. 4 of the paper). */
BpcSpec bitReversal(unsigned n);

/** Vector reversal: D_i = N-1-i (every bit complemented in place). */
BpcSpec vectorReversal(unsigned n);

/** Perfect shuffle: one left rotation of the index bits. */
BpcSpec perfectShuffle(unsigned n);

/** Unshuffle: one right rotation of the index bits. */
BpcSpec unshuffle(unsigned n);

/**
 * Shuffled row major: row-major index (r, c) moves to the index whose
 * bits interleave r and c (r bits in odd positions). Requires even n.
 */
BpcSpec shuffledRowMajor(unsigned n);

/**
 * Bit shuffle: the inverse of shuffled row major; de-interleaves the
 * index bits (even-position bits become the low half). Requires
 * even n.
 */
BpcSpec bitShuffle(unsigned n);

/**
 * FUB-alpha representative: bit reversal restricted to the low k index
 * bits (bit reversal within segments of size 2^k).
 */
BpcSpec segmentBitReversal(unsigned n, unsigned k);

/**
 * FUB-beta representative: perfect shuffle restricted to the low k
 * index bits.
 */
BpcSpec segmentPerfectShuffle(unsigned n, unsigned k);

/**
 * FUB-gamma representative: complement the index bits selected by
 * @p mask (translation by mask in the hypercube; vector reversal when
 * mask = N-1).
 */
BpcSpec bitComplement(unsigned n, Word mask);

/** One named Table I row: label plus generator result. */
struct TableOneRow
{
    std::string name;
    BpcSpec spec;
};

/** All rows of Table I for a given n (n even; the table's entries all
 *  exist at even n). */
std::vector<TableOneRow> tableOne(unsigned n);

} // namespace srbenes::named

#endif // SRBENES_PERM_NAMED_BPC_HH
