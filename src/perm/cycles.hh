/**
 * @file
 * Cycle-structure utilities for permutations.
 *
 * The routing theory mostly works positionally, but several
 * experiments and applications need the algebraic view: cycle
 * decomposition (how many passes a register-exchange realization
 * needs), order (how many times a fabric must be traversed before a
 * schedule repeats), and parity. Also provides construction from
 * cycle notation, which makes tests and examples far more readable
 * than destination vectors.
 */

#ifndef SRBENES_PERM_CYCLES_HH
#define SRBENES_PERM_CYCLES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "perm/permutation.hh"

namespace srbenes
{

/** Disjoint cycles of a permutation, fixed points omitted; each
 *  cycle starts at its smallest element, cycles sorted by that
 *  element. */
std::vector<std::vector<Word>> cycleDecomposition(
    const Permutation &perm);

/** Build a permutation of @p size from disjoint cycles (elements
 *  not mentioned are fixed). fatal()s on repeated elements. */
Permutation fromCycles(std::size_t size,
                       const std::vector<std::vector<Word>> &cycles);

/** Multiplicative order: smallest k >= 1 with perm^k = identity. */
std::uint64_t permutationOrder(const Permutation &perm);

/** True iff the permutation is even (product of an even number of
 *  transpositions). */
bool isEvenPermutation(const Permutation &perm);

/** Number of fixed points. */
std::size_t countFixedPoints(const Permutation &perm);

/** perm raised to the k-th power under then-composition. */
Permutation permutationPower(const Permutation &perm,
                             std::uint64_t k);

/** Render in cycle notation, e.g. "(0 2 3)(4 5)"; identity renders
 *  as "()". */
std::string toCycleString(const Permutation &perm);

} // namespace srbenes

#endif // SRBENES_PERM_CYCLES_HH
