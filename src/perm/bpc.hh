/**
 * @file
 * Bit-permute-complement (BPC) permutations, Section II of the paper.
 *
 * A BPC(n) permutation on N = 2^n elements is specified by a vector
 * A = (A_{n-1}, ..., A_0), where (|A_{n-1}|, ..., |A_0|) is a
 * permutation of (0, ..., n-1) and the sign of A_j says whether source
 * bit j is complemented. The paper distinguishes +0 from -0; we avoid
 * that encoding pitfall by storing each entry as an explicit
 * (position, complement) pair, and provide parsing from the paper's
 * signed notation (with "-0" spelled out) for fidelity in tests and
 * benches.
 *
 * Destination computation, eq. (3) of the paper:
 *     (D_i)_{|A_j|} = (i)_j xor complement_j .
 */

#ifndef SRBENES_PERM_BPC_HH
#define SRBENES_PERM_BPC_HH

#include <optional>
#include <string>
#include <vector>

#include "common/bitops.hh"
#include "common/prng.hh"
#include "perm/permutation.hh"

namespace srbenes
{

/** One entry of a BPC vector: where source bit j lands and whether it
 *  is complemented first. */
struct BpcAxis
{
    unsigned position; //!< |A_j|: destination bit index.
    bool complement;   //!< SIGN(A_j) < 0 in the paper's notation.

    bool operator==(const BpcAxis &other) const = default;
};

/**
 * A BPC(n) permutation specification. axes()[j] describes source bit
 * j (the paper's A_j). Construction validates that the positions form
 * a permutation of (0, ..., n-1).
 */
class BpcSpec
{
  public:
    /** Build from per-source-bit axes; axes[j] is the paper's A_j. */
    explicit BpcSpec(std::vector<BpcAxis> axes);

    /**
     * Parse the paper's notation: entries listed
     * (A_{n-1}, ..., A_0), e.g.\ fromPaper({"0", "-1", "-2"}) is the
     * example A = (0, -1, -2) from Section II. "-0" parses as
     * complemented position 0.
     */
    static BpcSpec fromPaper(const std::vector<std::string> &entries);

    /** The identity BPC spec on n bits. */
    static BpcSpec identity(unsigned n);

    /** Uniform random BPC spec on n bits. */
    static BpcSpec random(unsigned n, Prng &prng);

    unsigned n() const { return static_cast<unsigned>(axes_.size()); }

    const std::vector<BpcAxis> &axes() const { return axes_; }
    const BpcAxis &axis(unsigned j) const { return axes_[j]; }

    /** Destination of input @p i under eq. (3). */
    Word destinationOf(Word i) const;

    /** Expand to the explicit N = 2^n destination-tag permutation. */
    Permutation toPermutation() const;

    /** The BPC spec of the inverse permutation. */
    BpcSpec inverse() const;

    /**
     * Sequential composition (this first, then @p other), which BPC is
     * closed under; matches Permutation::then on the expansions.
     */
    BpcSpec then(const BpcSpec &other) const;

    /**
     * Lemma 1 / Theorem 2: the BPC(n-1) specs of the tag sequences
     * U and L entering the upper and lower B(n-1) subnetworks when
     * this permutation is self-routed through B(n). first = U,
     * second = L. Requires n >= 2.
     */
    std::pair<BpcSpec, BpcSpec> decompose() const;

    bool operator==(const BpcSpec &other) const = default;

    /** Render in the paper's (A_{n-1}, ..., A_0) notation. */
    std::string toString() const;

  private:
    std::vector<BpcAxis> axes_;
};

/**
 * Recognize whether @p perm is a BPC permutation; returns its spec if
 * so. Used by the class-density experiment (E3). O(N log N).
 */
std::optional<BpcSpec> recognizeBpc(const Permutation &perm);

} // namespace srbenes

#endif // SRBENES_PERM_BPC_HH
