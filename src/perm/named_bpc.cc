#include "perm/named_bpc.hh"

#include "common/logging.hh"

namespace srbenes::named
{

namespace
{

void
requireEven(unsigned n, const char *what)
{
    if (n % 2 != 0)
        fatal("%s requires an even number of index bits, got n = %u",
              what, n);
}

} // namespace

BpcSpec
matrixTranspose(unsigned n)
{
    requireEven(n, "matrixTranspose");
    std::vector<BpcAxis> axes(n);
    for (unsigned j = 0; j < n; ++j)
        axes[j] = BpcAxis{(j + n / 2) % n, false};
    return BpcSpec(std::move(axes));
}

BpcSpec
bitReversal(unsigned n)
{
    std::vector<BpcAxis> axes(n);
    for (unsigned j = 0; j < n; ++j)
        axes[j] = BpcAxis{n - 1 - j, false};
    return BpcSpec(std::move(axes));
}

BpcSpec
vectorReversal(unsigned n)
{
    std::vector<BpcAxis> axes(n);
    for (unsigned j = 0; j < n; ++j)
        axes[j] = BpcAxis{j, true};
    return BpcSpec(std::move(axes));
}

BpcSpec
perfectShuffle(unsigned n)
{
    std::vector<BpcAxis> axes(n);
    for (unsigned j = 0; j < n; ++j)
        axes[j] = BpcAxis{(j + 1) % n, false};
    return BpcSpec(std::move(axes));
}

BpcSpec
unshuffle(unsigned n)
{
    std::vector<BpcAxis> axes(n);
    for (unsigned j = 0; j < n; ++j)
        axes[j] = BpcAxis{(j + n - 1) % n, false};
    return BpcSpec(std::move(axes));
}

BpcSpec
shuffledRowMajor(unsigned n)
{
    requireEven(n, "shuffledRowMajor");
    const unsigned m = n / 2;
    std::vector<BpcAxis> axes(n);
    for (unsigned j = 0; j < n; ++j) {
        // Column bit c_j -> even position 2j; row bit r_{j-m} -> odd
        // position 2(j-m)+1.
        const unsigned p = (j < m) ? 2 * j : 2 * (j - m) + 1;
        axes[j] = BpcAxis{p, false};
    }
    return BpcSpec(std::move(axes));
}

BpcSpec
bitShuffle(unsigned n)
{
    requireEven(n, "bitShuffle");
    return shuffledRowMajor(n).inverse();
}

BpcSpec
segmentBitReversal(unsigned n, unsigned k)
{
    if (k > n)
        fatal("segmentBitReversal: k = %u exceeds n = %u", k, n);
    std::vector<BpcAxis> axes(n);
    for (unsigned j = 0; j < n; ++j) {
        const unsigned p = (j < k) ? k - 1 - j : j;
        axes[j] = BpcAxis{p, false};
    }
    return BpcSpec(std::move(axes));
}

BpcSpec
segmentPerfectShuffle(unsigned n, unsigned k)
{
    if (k == 0 || k > n)
        fatal("segmentPerfectShuffle: bad k = %u for n = %u", k, n);
    std::vector<BpcAxis> axes(n);
    for (unsigned j = 0; j < n; ++j) {
        const unsigned p = (j < k) ? (j + 1) % k : j;
        axes[j] = BpcAxis{p, false};
    }
    return BpcSpec(std::move(axes));
}

BpcSpec
bitComplement(unsigned n, Word mask)
{
    std::vector<BpcAxis> axes(n);
    for (unsigned j = 0; j < n; ++j)
        axes[j] = BpcAxis{j, bit(mask, j) != 0};
    return BpcSpec(std::move(axes));
}

std::vector<TableOneRow>
tableOne(unsigned n)
{
    requireEven(n, "tableOne");
    return {
        {"Matrix Transpose", matrixTranspose(n)},
        {"Bit Reversal", bitReversal(n)},
        {"Vector Reversal", vectorReversal(n)},
        {"Perfect Shuffle", perfectShuffle(n)},
        {"Unshuffle", unshuffle(n)},
        {"Shuffled Row Major", shuffledRowMajor(n)},
        {"Bit Shuffle", bitShuffle(n)},
    };
}

} // namespace srbenes::named
