/**
 * @file
 * Composite permutation constructors of Theorems 4, 5 and 6.
 *
 * A subset J of the bit positions {n-1, ..., 0} J-partitions the
 * indices 0..N-1 into 2^|J| blocks: i and j share a block iff they
 * agree on every bit in J. Theorem 4 permutes within each block by
 * some F(r) permutation (r = n - |J|); Theorem 5 additionally maps
 * blocks onto blocks by an F(n-r) permutation; Theorem 6 nests the
 * construction over a tree of disjoint bit-position sets. All three
 * constructions provably stay inside F(n) -- the property tests check
 * exactly that against the Theorem 1 membership test and the network
 * simulator.
 */

#ifndef SRBENES_PERM_COMPOSE_HH
#define SRBENES_PERM_COMPOSE_HH

#include <functional>
#include <vector>

#include "perm/permutation.hh"

namespace srbenes
{

/**
 * The J-partition of (0, ..., 2^n - 1) induced by the fixed bit
 * positions in @p fixed_mask. Provides the block/rank coordinate
 * system used by the composite constructors: the rank of an element
 * within its block packs the free (non-fixed) bits in ascending
 * position order, which preserves the natural element order inside a
 * block.
 */
class JPartition
{
  public:
    /** @param n index width; @param fixed_mask bits in J. */
    JPartition(unsigned n, Word fixed_mask);

    unsigned n() const { return n_; }
    /** r = n - |J|: blocks have 2^r elements. */
    unsigned freeBits() const { return free_bits_; }
    Word fixedMask() const { return fixed_mask_; }
    Word freeMask() const { return free_mask_; }

    std::size_t numBlocks() const
    {
        return std::size_t{1} << (n_ - free_bits_);
    }
    std::size_t blockSize() const { return std::size_t{1} << free_bits_; }

    /** Packed J-bit values of @p i: which block it lies in. */
    Word blockOf(Word i) const { return extractBits(i, fixed_mask_); }

    /** Packed free-bit values: position of @p i within its block. */
    Word rankOf(Word i) const { return extractBits(i, free_mask_); }

    /** The element with the given block/rank coordinates. */
    Word
    elementOf(Word block, Word rank) const
    {
        return depositBits(block, fixed_mask_) |
               depositBits(rank, free_mask_);
    }

  private:
    unsigned n_;
    unsigned free_bits_;
    Word fixed_mask_;
    Word free_mask_;
};

/**
 * Theorem 4: permute within each block of the J-partition. @p gs has
 * one permutation of blockSize() elements per block (indexed by
 * packed block id).
 */
Permutation blockwisePermutation(unsigned n, Word fixed_mask,
                                 const std::vector<Permutation> &gs);

/** Theorem 4 with the same within-block permutation for every block. */
Permutation blockwisePermutation(unsigned n, Word fixed_mask,
                                 const Permutation &g);

/**
 * Theorem 5: block b's elements move to block @p block_perm [b],
 * permuted within by gs[b].
 */
Permutation blockMappedPermutation(unsigned n, Word fixed_mask,
                                   const std::vector<Permutation> &gs,
                                   const Permutation &block_perm);

/**
 * Theorem 6: hierarchical composite over disjoint level masks covering
 * all n bits. For each level l (outermost first, matching the paper's
 * J_1, J_2, ...), the elements' level-l field value v is replaced by
 * phi(l, ancestors)[v], where ancestors holds the (original) field
 * values at levels 0..l-1 -- i.e.\ the block of the partition tree
 * whose children are being permuted. Each phi(l, .) must be a
 * permutation of 2^|level_masks[l]| elements.
 */
Permutation hierarchicalPermutation(
    unsigned n, const std::vector<Word> &level_masks,
    const std::function<Permutation(unsigned level,
                                    const std::vector<Word> &ancestors)>
        &phi);

} // namespace srbenes

#endif // SRBENES_PERM_COMPOSE_HH
