/**
 * @file
 * The Permutation value type.
 *
 * A permutation D = (D_0, ..., D_{N-1}) of (0, ..., N-1) is stored in
 * the paper's destination-tag convention: input (or PE) i is sent to
 * output D_i. All permutation classes (BPC, omega, inverse omega, F)
 * and all fabrics consume this type.
 */

#ifndef SRBENES_PERM_PERMUTATION_HH
#define SRBENES_PERM_PERMUTATION_HH

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/bitops.hh"
#include "common/prng.hh"

namespace srbenes
{

/**
 * An immutable-size permutation of (0, ..., N-1) in destination-tag
 * form. Construction validates the vector; a malformed vector is a
 * user error and calls fatal().
 */
class Permutation
{
  public:
    /** The identity permutation on @p n elements. */
    static Permutation identity(std::size_t n);

    /** A uniform random permutation (Fisher-Yates) on @p n elements. */
    static Permutation random(std::size_t n, Prng &prng);

    /**
     * Build from a destination vector; validates that @p dest is a
     * permutation of (0, ..., dest.size()-1).
     */
    explicit Permutation(std::vector<Word> dest);
    Permutation(std::initializer_list<Word> dest);

    /** Check whether @p dest is a valid permutation vector. */
    static bool isValid(const std::vector<Word> &dest);

    std::size_t size() const { return dest_.size(); }

    /**
     * log2(size()); the paper's n with N = 2^n. panic()s if the size
     * is not a power of two (network classes require it; generic
     * algebra does not).
     */
    unsigned log2Size() const;

    /** Destination of input @p i. */
    Word operator[](std::size_t i) const { return dest_[i]; }

    const std::vector<Word> &dest() const { return dest_; }

    /** The inverse permutation: output j receives input inverse()[j]. */
    Permutation inverse() const;

    /**
     * Sequential composition in the paper's product convention
     * (Section II closing remark): (A.then(B))_i = B_{A_i}, i.e.\
     * perform A first, then B.
     */
    Permutation then(const Permutation &other) const;

    /**
     * Permute a data vector: element at position i moves to position
     * D_i of the result. @p data must have size() elements.
     */
    template <typename T>
    std::vector<T>
    applyTo(const std::vector<T> &data) const
    {
        std::vector<T> out(data.size());
        for (std::size_t i = 0; i < dest_.size(); ++i)
            out[dest_[i]] = data[i];
        return out;
    }

    bool operator==(const Permutation &other) const = default;

    /** Render as "(d0, d1, ..., dN-1)". */
    std::string toString() const;

  private:
    std::vector<Word> dest_;
};

} // namespace srbenes

#endif // SRBENES_PERM_PERMUTATION_HH
