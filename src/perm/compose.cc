#include "perm/compose.hh"

#include "common/logging.hh"

namespace srbenes
{

JPartition::JPartition(unsigned n, Word fixed_mask)
    : n_(n), fixed_mask_(fixed_mask & lowMask(n)),
      free_mask_(~fixed_mask & lowMask(n))
{
    if (n == 0 || n > 63)
        fatal("JPartition: bad index width %u", n);
    free_bits_ = popCount(free_mask_);
}

Permutation
blockwisePermutation(unsigned n, Word fixed_mask,
                     const std::vector<Permutation> &gs)
{
    const JPartition part(n, fixed_mask);
    if (gs.size() != part.numBlocks())
        fatal("need %zu block permutations, got %zu", part.numBlocks(),
              gs.size());
    for (const auto &g : gs)
        if (g.size() != part.blockSize())
            fatal("block permutation size %zu != block size %zu",
                  g.size(), part.blockSize());

    const Word size = Word{1} << n;
    std::vector<Word> dest(size);
    for (Word i = 0; i < size; ++i) {
        const Word b = part.blockOf(i);
        dest[i] = part.elementOf(b, gs[b][part.rankOf(i)]);
    }
    return Permutation(std::move(dest));
}

Permutation
blockwisePermutation(unsigned n, Word fixed_mask, const Permutation &g)
{
    const JPartition part(n, fixed_mask);
    return blockwisePermutation(
        n, fixed_mask, std::vector<Permutation>(part.numBlocks(), g));
}

Permutation
blockMappedPermutation(unsigned n, Word fixed_mask,
                       const std::vector<Permutation> &gs,
                       const Permutation &block_perm)
{
    const JPartition part(n, fixed_mask);
    if (gs.size() != part.numBlocks())
        fatal("need %zu block permutations, got %zu", part.numBlocks(),
              gs.size());
    if (block_perm.size() != part.numBlocks())
        fatal("block-level permutation size %zu != block count %zu",
              block_perm.size(), part.numBlocks());

    const Word size = Word{1} << n;
    std::vector<Word> dest(size);
    for (Word i = 0; i < size; ++i) {
        const Word b = part.blockOf(i);
        dest[i] = part.elementOf(block_perm[b], gs[b][part.rankOf(i)]);
    }
    return Permutation(std::move(dest));
}

Permutation
hierarchicalPermutation(
    unsigned n, const std::vector<Word> &level_masks,
    const std::function<Permutation(unsigned,
                                    const std::vector<Word> &)> &phi)
{
    Word covered = 0;
    for (Word m : level_masks) {
        if ((m & covered) != 0)
            fatal("hierarchical level masks are not disjoint");
        covered |= m;
    }
    if (covered != lowMask(n))
        fatal("hierarchical level masks do not cover all %u bits", n);

    const unsigned levels = static_cast<unsigned>(level_masks.size());
    const Word size = Word{1} << n;
    std::vector<Word> dest(size);

    // Cache phi lookups: the same (level, ancestors) pair recurs for
    // every element of a block.
    std::vector<std::vector<Word>> cache_keys;
    std::vector<Permutation> cache_vals;
    std::vector<Word> key;
    auto lookup = [&](unsigned level, const std::vector<Word> &anc)
        -> const Permutation & {
        key.assign(1, level);
        key.insert(key.end(), anc.begin(), anc.end());
        for (std::size_t c = 0; c < cache_keys.size(); ++c)
            if (cache_keys[c] == key)
                return cache_vals[c];
        cache_keys.push_back(key);
        cache_vals.push_back(phi(level, anc));
        const Permutation &p = cache_vals.back();
        if (p.size() != (std::size_t{1} << popCount(level_masks[level])))
            fatal("phi at level %u has wrong size %zu", level, p.size());
        return p;
    };

    std::vector<Word> fields(levels), ancestors;
    for (Word i = 0; i < size; ++i) {
        for (unsigned l = 0; l < levels; ++l)
            fields[l] = extractBits(i, level_masks[l]);

        // The paper's loop runs i = k down to 1; by the time level l
        // is remapped, its ancestor fields (levels < l) still hold
        // their original values, so we may equivalently evaluate all
        // levels against the original fields.
        Word out = 0;
        for (unsigned l = 0; l < levels; ++l) {
            ancestors.assign(fields.begin(), fields.begin() + l);
            const Permutation &p = lookup(l, ancestors);
            out |= depositBits(p[fields[l]], level_masks[l]);
        }
        dest[i] = out;
    }
    return Permutation(std::move(dest));
}

} // namespace srbenes
