#include "perm/f_diagnosis.hh"

#include <sstream>

#include "common/logging.hh"
#include "perm/f_class.hh"

namespace srbenes
{

std::string
FDiagnosis::toString() const
{
    std::ostringstream os;
    os << "level " << level << ", subnetwork " << subnetwork << ", "
       << (upper_child ? "upper" : "lower")
       << " child: switches " << first_switch << " and "
       << second_switch << " both deliver high-bits value "
       << colliding_value;
    return os.str();
}

namespace
{

/**
 * Check one subnetwork's split at one level; on a collision fill
 * @p diag. Tags are full-width values whose low (n - level) bits
 * are still live.
 */
bool
splitOrDiagnose(const std::vector<Word> &tags, unsigned level,
                Word subnetwork, std::vector<Word> &upper,
                std::vector<Word> &lower,
                std::optional<FDiagnosis> &diag)
{
    const std::size_t half = tags.size() / 2;
    upper.resize(half);
    lower.resize(half);
    for (std::size_t i = 0; i < half; ++i) {
        if (bit(tags[2 * i], 0) == 0) {
            upper[i] = tags[2 * i] >> 1;
            lower[i] = tags[2 * i + 1] >> 1;
        } else {
            upper[i] = tags[2 * i + 1] >> 1;
            lower[i] = tags[2 * i] >> 1;
        }
    }

    for (int side = 0; side < 2; ++side) {
        const auto &vals = side == 0 ? upper : lower;
        std::vector<Word> first_at(half, half);
        for (std::size_t i = 0; i < half; ++i) {
            if (vals[i] >= half) {
                // Tag out of range: treat as a collision with the
                // wrap value (cannot happen for valid
                // permutations).
                panic("tag escaped its subnetwork range");
            }
            if (first_at[vals[i]] != half) {
                diag = FDiagnosis{level, subnetwork, side == 0,
                                  vals[i],
                                  first_at[vals[i]],
                                  static_cast<Word>(i)};
                return false;
            }
            first_at[vals[i]] = static_cast<Word>(i);
        }
    }
    return true;
}

bool
recurse(const std::vector<Word> &tags, unsigned level,
        Word subnetwork, unsigned n,
        std::optional<FDiagnosis> &diag)
{
    if (n <= 1)
        return true;
    std::vector<Word> upper, lower;
    if (!splitOrDiagnose(tags, level, subnetwork, upper, lower,
                         diag))
        return false;
    return recurse(upper, level + 1, 2 * subnetwork, n - 1, diag) &&
           recurse(lower, level + 1, 2 * subnetwork + 1, n - 1,
                   diag);
}

} // namespace

std::optional<FDiagnosis>
diagnoseNonMembership(const Permutation &perm)
{
    std::optional<FDiagnosis> diag;
    recurse(perm.dest(), 0, 0, perm.log2Size(), diag);
    return diag;
}

} // namespace srbenes
