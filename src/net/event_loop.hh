/**
 * @file
 * A minimal epoll event loop for the routing daemon.
 *
 * Single-threaded by design: every handler runs on the thread
 * inside run()/runOnce(), so the server above it needs no locks on
 * its connection state. The only cross-thread (and async-signal)
 * entry point is wakeup(): an eventfd write that pops the loop out
 * of epoll_wait so it re-reads whatever flags the caller set —
 * this is how SIGTERM turns into a graceful drain without the
 * signal handler touching any server state.
 *
 * Handlers are keyed by fd. A handler may add or remove fds
 * (including its own) while the loop is dispatching a batch:
 * dispatch looks each fd up again per event and skips entries that
 * vanished mid-batch.
 */

#ifndef SRBENES_NET_EVENT_LOOP_HH
#define SRBENES_NET_EVENT_LOOP_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

namespace srbenes
{
namespace net
{

class EventLoop
{
  public:
    using Handler = std::function<void(std::uint32_t events)>;

    EventLoop();
    ~EventLoop();

    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /** True when epoll and the wakeup eventfd came up. */
    bool valid() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

    /** Register @p fd for @p events (EPOLLIN/EPOLLOUT/...). */
    bool add(int fd, std::uint32_t events, Handler handler);
    /** Change the event mask of a registered fd. */
    bool mod(int fd, std::uint32_t events);
    /** Deregister; the caller still owns and closes the fd. */
    void del(int fd);

    /**
     * Wait up to @p timeout_ms (-1 = forever) and dispatch one
     * batch of events. Returns the number of events dispatched, or
     * -1 on an epoll error other than EINTR.
     */
    int runOnce(int timeout_ms);

    /**
     * Make the current or next runOnce() return immediately.
     * Async-signal-safe and callable from any thread.
     */
    void wakeup();

  private:
    int epoll_fd_ = -1;
    int wake_fd_ = -1;
    std::unordered_map<int, Handler> handlers_;
};

} // namespace net
} // namespace srbenes

#endif // SRBENES_NET_EVENT_LOOP_HH
