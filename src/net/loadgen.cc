/**
 * @file
 * Open-loop load generator implementation. One sender + one reader
 * thread per connection; cross-thread state is confined to the
 * atomic send-timestamp table and the sender's published send
 * count, so the whole generator is lock-free and tsan-clean by
 * construction.
 */

#include "net/loadgen.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/prng.hh"
#include "net/client.hh"
#include "obs/metrics.hh"
#include "perm/permutation.hh"

namespace srbenes
{
namespace net
{
namespace
{

/** One permutation pattern with its precomputed expectations. */
struct Pattern
{
    std::vector<Word> dest;
    std::vector<Word> payload;
    std::vector<Word> expected;
};

/** Per-connection accounting, joined into the report at the end. */
struct ConnState
{
    Client client;
    std::vector<std::atomic<std::uint64_t>> send_ns;
    std::atomic<std::uint64_t> sent{0};
    std::atomic<bool> sender_done{false};

    LoadgenReport partial;
    obs::Histogram latency;

    explicit ConnState(std::size_t max_sends) : send_ns(max_sends) {}
};

void
senderMain(ConnState &cs, const std::vector<Pattern> &patterns,
           const LoadgenOptions &opts, double per_conn_rate)
{
    using clock = std::chrono::steady_clock;
    const auto interval = std::chrono::nanoseconds(
        static_cast<std::uint64_t>(1e9 / per_conn_rate));
    const auto start = clock::now();
    const auto end =
        start + std::chrono::milliseconds(opts.duration_ms);

    std::uint64_t seq = 0;
    const std::size_t max_sends = cs.send_ns.size();
    for (auto next = start; next < end && seq < max_sends;
         next += interval) {
        std::this_thread::sleep_until(next);
        const Pattern &p = patterns[seq % patterns.size()];

        SubmitMsg m;
        m.id = seq;
        m.tenant = seq % opts.tenants;
        m.deadline_rel_ns = opts.deadline_rel_ns;
        m.dest = p.dest;
        m.has_payload = opts.with_payload;
        if (opts.with_payload)
            m.payload = p.payload;

        // order: relaxed; the reader only loads this slot after the
        // response for seq arrives, which the send below precedes.
        cs.send_ns[seq].store(obs::monotonicNs(),
                              std::memory_order_relaxed);
        if (!cs.client.send(Message{std::move(m)}))
            break;
        ++seq;
        // order: release publishes the timestamp slot to the
        // reader's acquire load of sent.
        cs.sent.store(seq, std::memory_order_release);
    }
    // order: release; pairs with the reader's acquire to make the
    // final sent count visible.
    cs.sender_done.store(true, std::memory_order_release);
}

void
readerMain(ConnState &cs, const std::vector<Pattern> &patterns,
           const LoadgenOptions &opts)
{
    LoadgenReport &r = cs.partial;
    std::uint64_t settle_deadline = 0;

    for (;;) {
        // order: acquire pairs with the sender's release stores, so
        // sent and the timestamp slots it covers are visible.
        const bool done =
            cs.sender_done.load(std::memory_order_acquire);
        // order: acquire for the same pairing — the count must not
        // be read ahead of the slots the sender filled before it.
        const std::uint64_t sent =
            cs.sent.load(std::memory_order_acquire);
        if (done && r.responses >= sent)
            break;
        if (done) {
            if (settle_deadline == 0)
                settle_deadline = obs::monotonicNs() +
                                  opts.settle_ms * 1000000ULL;
            else if (obs::monotonicNs() > settle_deadline)
                break; // stragglers lost
        }

        Message msg;
        bool timed_out = false;
        std::string error;
        if (!cs.client.receiveFor(msg, 100, timed_out, &error)) {
            if (timed_out)
                continue;
            // EOF or error: count a protocol error only for a
            // malformed frame; a clean close with everything
            // answered is the drain's normal end.
            if (cs.client.protocolErrors() > 0)
                r.protocol_errors = cs.client.protocolErrors();
            break;
        }

        auto *res = std::get_if<SubmitResultMsg>(&msg);
        if (res == nullptr) {
            ++r.protocol_errors; // unsolicited message type
            continue;
        }
        ++r.responses;
        const std::uint64_t seq = res->id;
        if (seq < cs.send_ns.size()) {
            // order: relaxed; see senderMain — the response's
            // arrival already orders this load after the store.
            const std::uint64_t t0 =
                cs.send_ns[seq].load(std::memory_order_relaxed);
            if (t0 != 0)
                cs.latency.observe(obs::monotonicNs() - t0);
        }
        switch (res->status) {
          case Status::Ok:
            ++r.ok;
            if (opts.with_payload &&
                res->payload !=
                    patterns[seq % patterns.size()].expected)
                ++r.payload_mismatches;
            break;
          case Status::NotInF:
            ++r.not_in_f;
            break;
          case Status::FaultDetected:
            ++r.fault_detected;
            break;
          case Status::DeadlineExceeded:
            ++r.deadline_exceeded;
            break;
          case Status::Shed:
            ++r.shed;
            break;
          case Status::OverQuota:
            ++r.over_quota;
            break;
          case Status::BadRequest:
            ++r.bad_request;
            break;
          case Status::Draining:
            ++r.draining;
            break;
          default:
            ++r.other_status;
            break;
        }
    }
}

} // namespace

LoadgenReport
runLoadgen(const LoadgenOptions &opts)
{
    LoadgenReport report;
    report.offered_rps = opts.rate_per_sec;

    // Discover the fabric size from the daemon itself, so the
    // generator needs no -n flag that can drift out of sync.
    HealthResultMsg health;
    if (!fetchHealth(opts.host, opts.port, health)) {
        report.connect_failed = true;
        return report;
    }
    const std::size_t N = std::size_t{1} << health.n;

    Prng prng(opts.seed);
    std::vector<Pattern> patterns(std::max(1u, opts.patterns));
    for (std::size_t k = 0; k < patterns.size(); ++k) {
        Pattern &p = patterns[k];
        const Permutation perm = Permutation::random(N, prng);
        p.dest = perm.dest();
        p.payload.resize(N);
        for (std::size_t i = 0; i < N; ++i)
            p.payload[i] = (Word{k} << 32) | i;
        p.expected = perm.applyTo(p.payload);
    }

    const unsigned conns = std::max(1u, opts.connections);
    const double per_conn_rate =
        std::max(1.0, opts.rate_per_sec / conns);
    const std::size_t max_sends = static_cast<std::size_t>(
        per_conn_rate * (static_cast<double>(opts.duration_ms) / 1e3) *
            2 +
        1024);

    std::vector<std::unique_ptr<ConnState>> states;
    for (unsigned c = 0; c < conns; ++c) {
        auto cs = std::make_unique<ConnState>(max_sends);
        if (!cs->client.connect(opts.host, opts.port)) {
            report.connect_failed = true;
            return report;
        }
        states.push_back(std::move(cs));
    }

    const std::uint64_t t0 = obs::monotonicNs();
    std::vector<std::thread> threads;
    for (auto &cs : states) {
        threads.emplace_back([&cs, &patterns, &opts, per_conn_rate] {
            senderMain(*cs, patterns, opts, per_conn_rate);
        });
        threads.emplace_back([&cs, &patterns, &opts] {
            readerMain(*cs, patterns, opts);
        });
    }
    for (std::thread &t : threads)
        t.join();
    const std::uint64_t t1 = obs::monotonicNs();

    obs::Histogram::Snapshot merged;
    for (auto &cs : states) {
        const LoadgenReport &p = cs->partial;
        // order: relaxed; threads are joined, values are final.
        report.sent += cs->sent.load(std::memory_order_relaxed);
        report.responses += p.responses;
        report.ok += p.ok;
        report.not_in_f += p.not_in_f;
        report.fault_detected += p.fault_detected;
        report.deadline_exceeded += p.deadline_exceeded;
        report.shed += p.shed;
        report.over_quota += p.over_quota;
        report.bad_request += p.bad_request;
        report.draining += p.draining;
        report.other_status += p.other_status;
        report.protocol_errors += p.protocol_errors;
        report.payload_mismatches += p.payload_mismatches;
        merged.merge(cs->latency.snapshot());
    }
    report.lost = report.sent - report.responses;
    report.elapsed_sec = static_cast<double>(t1 - t0) * 1e-9;
    const double send_window =
        static_cast<double>(opts.duration_ms) / 1e3;
    if (send_window > 0)
        report.achieved_rps =
            static_cast<double>(report.sent) / send_window;
    if (report.elapsed_sec > 0)
        report.serves_per_sec =
            static_cast<double>(report.ok) / report.elapsed_sec;
    report.p50_ns = merged.quantile(0.50);
    report.p99_ns = merged.quantile(0.99);
    return report;
}

bool
fetchStats(const std::string &host, std::uint16_t port,
           StatsFormat format, std::string &out)
{
    Client client;
    if (!client.connect(host, port))
        return false;
    Message response;
    StatsMsg req;
    req.format = format;
    if (!client.roundTrip(Message{req}, response))
        return false;
    auto *stats = std::get_if<StatsResultMsg>(&response);
    if (stats == nullptr)
        return false;
    out = std::move(stats->body);
    return true;
}

bool
fetchHealth(const std::string &host, std::uint16_t port,
            HealthResultMsg &out)
{
    Client client;
    if (!client.connect(host, port))
        return false;
    Message response;
    if (!client.roundTrip(Message{HealthMsg{}}, response))
        return false;
    auto *health = std::get_if<HealthResultMsg>(&response);
    if (health == nullptr)
        return false;
    out = *health;
    return true;
}

} // namespace net
} // namespace srbenes
