/**
 * @file
 * Open-loop load generator for srbd: the SLO bench's traffic source.
 *
 * Open-loop means arrivals are scheduled by a clock, not by
 * completions — each connection's sender thread fires submits at
 * fixed intervals regardless of how many responses are outstanding,
 * so server-side queueing shows up as LATENCY (and eventually
 * sheds) instead of silently throttling the offered rate the way a
 * closed-loop client would. A paired reader thread per connection
 * matches responses to send timestamps and accumulates the latency
 * histogram; the two threads share only the half-duplex Client and
 * an atomic timestamp table.
 *
 * The generator verifies what it can: routed payloads are checked
 * word-for-word against Permutation::applyTo of the submitted
 * pattern, every sent request must be answered (lost == 0 is the
 * drain guarantee seen from the client side), and any malformed
 * frame counts as a protocol error. LoadgenReport::clean() is the
 * soak gate CI asserts.
 */

#ifndef SRBENES_NET_LOADGEN_HH
#define SRBENES_NET_LOADGEN_HH

#include <cstdint>
#include <string>

#include "net/protocol.hh"

namespace srbenes
{
namespace net
{

struct LoadgenOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    unsigned connections = 2;
    /** Aggregate offered submits/sec across all connections. */
    double rate_per_sec = 20000;
    std::uint64_t duration_ms = 2000;
    /** Distinct tenant ids cycled across submits. */
    unsigned tenants = 4;
    /** Submit payload words (and verify the routed result). */
    bool with_payload = true;
    /** Distinct random permutations cycled across submits. */
    unsigned patterns = 16;
    /** Per-request relative deadline on the wire; 0 = none. */
    std::uint64_t deadline_rel_ns = 0;
    std::uint64_t seed = 1;
    /** Grace for straggler responses after the send window. */
    std::uint64_t settle_ms = 5000;
};

struct LoadgenReport
{
    bool connect_failed = false;
    std::uint64_t sent = 0;
    std::uint64_t responses = 0;
    /** sent - responses after the settle window: must be 0. */
    std::uint64_t lost = 0;

    /** @{ Response status counts. */
    std::uint64_t ok = 0;
    std::uint64_t not_in_f = 0;
    std::uint64_t fault_detected = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t shed = 0;
    std::uint64_t over_quota = 0;
    std::uint64_t bad_request = 0;
    std::uint64_t draining = 0;
    std::uint64_t other_status = 0;
    /** @} */

    std::uint64_t protocol_errors = 0;
    std::uint64_t payload_mismatches = 0;

    double offered_rps = 0;
    /** sent / send-window seconds (pacing slip shows here). */
    double achieved_rps = 0;
    /** ok / elapsed seconds: the serves/s headline. */
    double serves_per_sec = 0;
    double elapsed_sec = 0;

    /** @{ Client-observed submit→response latency. */
    std::uint64_t p50_ns = 0;
    std::uint64_t p99_ns = 0;
    /** @} */

    /** The CI soak gate. */
    bool
    clean() const
    {
        return !connect_failed && responses > 0 &&
               protocol_errors == 0 && lost == 0 &&
               payload_mismatches == 0;
    }
};

/** Run one open-loop load phase against a serving srbd. */
LoadgenReport runLoadgen(const LoadgenOptions &opts);

/**
 * Fetch the server's metrics exposition (Stats verb) over a fresh
 * connection; false on any failure.
 */
bool fetchStats(const std::string &host, std::uint16_t port,
                StatsFormat format, std::string &out);

/** Fetch the server's health snapshot over a fresh connection. */
bool fetchHealth(const std::string &host, std::uint16_t port,
                 HealthResultMsg &out);

} // namespace net
} // namespace srbenes

#endif // SRBENES_NET_LOADGEN_HH
