/**
 * @file
 * Token-bucket quota implementation. Refill is computed lazily from
 * the elapsed time at each admission attempt — no timers, no
 * background thread, exact at the resolution of the event loop.
 */

#include "net/session.hh"

#include <algorithm>

namespace srbenes
{
namespace net
{

QuotaManager::QuotaManager(QuotaOptions opts,
                           obs::MetricsRegistry *metrics)
    : opts_(opts), metrics_(metrics)
{
    if (opts_.burst <= 0)
        opts_.burst = std::max(1.0, opts_.rate_per_sec);
}

QuotaManager::Bucket
QuotaManager::makeBucket(const std::string &label,
                         std::uint64_t now_ns) const
{
    Bucket b;
    b.tokens = opts_.burst;
    b.last_ns = now_ns;
    if (metrics_ != nullptr) {
        b.admitted = &metrics_->counter("srbd_tenant_admitted_total",
                                        {{"tenant", label}});
        b.rejected = &metrics_->counter("srbd_tenant_rejected_total",
                                        {{"tenant", label}});
        b.level = &metrics_->gauge("srbd_tenant_tokens",
                                   {{"tenant", label}});
        b.level->set(static_cast<std::int64_t>(b.tokens));
    }
    return b;
}

QuotaManager::Bucket &
QuotaManager::bucketFor(std::uint64_t tenant, std::uint64_t now_ns)
{
    auto it = buckets_.find(tenant);
    if (it != buckets_.end())
        return it->second;
    if (buckets_.size() < opts_.max_tenants) {
        auto [ins, _] = buckets_.emplace(
            tenant, makeBucket(std::to_string(tenant), now_ns));
        return ins->second;
    }
    if (!overflow_ready_) {
        overflow_ = makeBucket("overflow", now_ns);
        overflow_ready_ = true;
    }
    return overflow_;
}

bool
QuotaManager::charge(Bucket &b, std::uint64_t now_ns)
{
    if (now_ns > b.last_ns) {
        const double dt = static_cast<double>(now_ns - b.last_ns) * 1e-9;
        b.tokens = std::min(opts_.burst,
                            b.tokens + dt * opts_.rate_per_sec);
        b.last_ns = now_ns;
    }
    const bool ok = b.tokens >= 1.0;
    if (ok) {
        b.tokens -= 1.0;
        if (b.admitted != nullptr)
            b.admitted->inc();
    } else if (b.rejected != nullptr) {
        b.rejected->inc();
    }
    if (b.level != nullptr)
        b.level->set(static_cast<std::int64_t>(b.tokens));
    return ok;
}

bool
QuotaManager::tryAdmit(std::uint64_t tenant, std::uint64_t now_ns)
{
    if (!enabled())
        return true;
    return charge(bucketFor(tenant, now_ns), now_ns);
}

} // namespace net
} // namespace srbenes
