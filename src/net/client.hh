/**
 * @file
 * Blocking framed client for the srbd protocol.
 *
 * Deliberately simple where the server is deliberately careful: a
 * connected TCP socket, blocking send of encoded frames, blocking
 * receive through the same Decoder the server uses. Thread model is
 * half-duplex-by-thread: ONE thread may call send() while ANOTHER
 * calls receive() (the two directions share no buffers), which is
 * exactly the sender/reader split the open-loop load generator
 * runs. A single-threaded request/response caller (tests, health
 * checks) just alternates send()/receive().
 */

#ifndef SRBENES_NET_CLIENT_HH
#define SRBENES_NET_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hh"

namespace srbenes
{
namespace net
{

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect (blocking); false on failure. */
    bool connect(const std::string &host, std::uint16_t port);

    bool connected() const { return fd_ >= 0; }

    /** Encode and write @p m fully (blocking). */
    bool send(const Message &m);

    /**
     * Block until one complete message arrives. False on EOF,
     * socket error, or protocol error (@p error explains; a decode
     * error also bumps protocol_errors()).
     */
    bool receive(Message &out, std::string *error = nullptr);

    /**
     * receive() bounded by a poll timeout: returns false with
     * @p timed_out = true when no frame completed in time (the
     * stream stays intact — call again).
     */
    bool receiveFor(Message &out, int timeout_ms, bool &timed_out,
                    std::string *error = nullptr);

    /** Malformed frames seen on this connection. */
    std::uint64_t protocolErrors() const { return protocol_errors_; }

    /** Convenience round-trip for single-threaded callers. */
    bool roundTrip(const Message &request, Message &response,
                   std::string *error = nullptr);

    void close();

  private:
    int fd_ = -1;
    Decoder decoder_;
    std::uint64_t protocol_errors_ = 0;
};

} // namespace net
} // namespace srbenes

#endif // SRBENES_NET_CLIENT_HH
