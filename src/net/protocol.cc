/**
 * @file
 * Frame codec implementation. Encoding appends to a caller buffer
 * (one allocation-free path for a connection's write queue);
 * decoding is a bounds-checked cursor over the receive buffer that
 * treats ANY deviation — short body, long body, unknown type,
 * counts that disagree with the body length — as a poisoning
 * protocol error.
 */

#include "net/protocol.hh"

#include <cstring>

namespace srbenes
{
namespace net
{
namespace
{

// ------------------------------------------------------------ writer

void
putU8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    putU32(out, static_cast<std::uint32_t>(v));
    putU32(out, static_cast<std::uint32_t>(v >> 32));
}

// ------------------------------------------------------------ reader

/**
 * Bounds-checked cursor over one frame body. Every get*() checks
 * remaining length and flips `ok` false instead of reading past the
 * end; callers check ok once at the end (and that the body was
 * consumed exactly).
 */
struct Reader
{
    const std::uint8_t *p;
    std::size_t len;
    std::size_t pos = 0;
    bool ok = true;

    bool
    need(std::size_t k)
    {
        if (len - pos < k) {
            ok = false;
            return false;
        }
        return true;
    }

    std::uint8_t
    getU8()
    {
        if (!need(1))
            return 0;
        return p[pos++];
    }

    std::uint32_t
    getU32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = static_cast<std::uint32_t>(p[pos]) |
                          static_cast<std::uint32_t>(p[pos + 1]) << 8 |
                          static_cast<std::uint32_t>(p[pos + 2]) << 16 |
                          static_cast<std::uint32_t>(p[pos + 3]) << 24;
        pos += 4;
        return v;
    }

    std::uint64_t
    getU64()
    {
        const std::uint64_t lo = getU32();
        const std::uint64_t hi = getU32();
        return lo | hi << 32;
    }

    bool consumed() const { return ok && pos == len; }
};

// --------------------------------------------------------- per-type

void
encodeBody(const SubmitMsg &m, std::vector<std::uint8_t> &out)
{
    putU8(out, static_cast<std::uint8_t>(MsgType::Submit));
    putU64(out, m.id);
    putU64(out, m.tenant);
    putU64(out, m.deadline_rel_ns);
    putU32(out, static_cast<std::uint32_t>(m.dest.size()));
    putU8(out, m.has_payload ? 1 : 0);
    for (Word d : m.dest)
        putU32(out, static_cast<std::uint32_t>(d));
    if (m.has_payload)
        for (Word w : m.payload)
            putU64(out, w);
}

void
encodeBody(const SubmitResultMsg &m, std::vector<std::uint8_t> &out)
{
    putU8(out, static_cast<std::uint8_t>(MsgType::SubmitResult));
    putU64(out, m.id);
    putU8(out, static_cast<std::uint8_t>(m.status));
    putU8(out, static_cast<std::uint8_t>(m.tier));
    putU64(out, m.server_ns);
    putU32(out, static_cast<std::uint32_t>(m.payload.size()));
    for (Word w : m.payload)
        putU64(out, w);
}

void
encodeBody(const HealthMsg &, std::vector<std::uint8_t> &out)
{
    putU8(out, static_cast<std::uint8_t>(MsgType::Health));
}

void
encodeBody(const HealthResultMsg &m, std::vector<std::uint8_t> &out)
{
    putU8(out, static_cast<std::uint8_t>(MsgType::HealthResult));
    putU8(out, static_cast<std::uint8_t>(m.state));
    putU32(out, m.n);
    putU32(out, m.workers);
    putU64(out, m.uptime_ns);
    putU64(out, m.served);
    putU64(out, m.inflight);
}

void
encodeBody(const StatsMsg &m, std::vector<std::uint8_t> &out)
{
    putU8(out, static_cast<std::uint8_t>(MsgType::Stats));
    putU8(out, static_cast<std::uint8_t>(m.format));
}

void
encodeBody(const StatsResultMsg &m, std::vector<std::uint8_t> &out)
{
    putU8(out, static_cast<std::uint8_t>(MsgType::StatsResult));
    putU8(out, static_cast<std::uint8_t>(m.format));
    putU32(out, static_cast<std::uint32_t>(m.body.size()));
    out.insert(out.end(), m.body.begin(), m.body.end());
}

bool
decodeBody(Reader &r, SubmitMsg &m, std::string *error)
{
    m.id = r.getU64();
    m.tenant = r.getU64();
    m.deadline_rel_ns = r.getU64();
    const std::uint32_t lines = r.getU32();
    const std::uint8_t has_payload = r.getU8();
    if (!r.ok || has_payload > 1) {
        if (error)
            *error = "submit header malformed";
        return false;
    }
    // The remaining body length must match the declared line count
    // EXACTLY, so a hostile count cannot drive a huge allocation:
    // the frame size cap already bounded len, and this check bounds
    // lines by len.
    const std::size_t want =
        std::size_t{lines} * (has_payload ? 12 : 4);
    if (r.len - r.pos != want) {
        if (error)
            *error = "submit body length disagrees with line count";
        return false;
    }
    m.dest.resize(lines);
    for (std::uint32_t i = 0; i < lines; ++i)
        m.dest[i] = r.getU32();
    m.has_payload = has_payload != 0;
    m.payload.clear();
    if (m.has_payload) {
        m.payload.resize(lines);
        for (std::uint32_t i = 0; i < lines; ++i)
            m.payload[i] = r.getU64();
    }
    return true;
}

bool
decodeBody(Reader &r, SubmitResultMsg &m, std::string *error)
{
    m.id = r.getU64();
    m.status = static_cast<Status>(r.getU8());
    m.tier = static_cast<ServeTier>(r.getU8());
    m.server_ns = r.getU64();
    const std::uint32_t count = r.getU32();
    if (!r.ok || r.len - r.pos != std::size_t{count} * 8) {
        if (error)
            *error = "submit-result body length disagrees with "
                     "payload count";
        return false;
    }
    m.payload.resize(count);
    for (std::uint32_t i = 0; i < count; ++i)
        m.payload[i] = r.getU64();
    return true;
}

bool
decodeBody(Reader &r, HealthResultMsg &m, std::string *error)
{
    m.state = static_cast<ServeState>(r.getU8());
    m.n = r.getU32();
    m.workers = r.getU32();
    m.uptime_ns = r.getU64();
    m.served = r.getU64();
    m.inflight = r.getU64();
    if (!r.consumed()) {
        if (error)
            *error = "health-result body malformed";
        return false;
    }
    return true;
}

bool
decodeBody(Reader &r, StatsResultMsg &m, std::string *error)
{
    m.format = static_cast<StatsFormat>(r.getU8());
    const std::uint32_t len = r.getU32();
    if (!r.ok || r.len - r.pos != len) {
        if (error)
            *error = "stats-result body length disagrees with "
                     "declared size";
        return false;
    }
    m.body.assign(reinterpret_cast<const char *>(r.p + r.pos), len);
    r.pos += len;
    return true;
}

} // namespace

const char *
statusName(Status s) noexcept
{
    switch (s) {
      case Status::Ok:
        return "ok";
      case Status::NotInF:
        return "not_in_F";
      case Status::FaultDetected:
        return "fault_detected";
      case Status::DeadlineExceeded:
        return "deadline_exceeded";
      case Status::Shed:
        return "shed";
      case Status::OverQuota:
        return "over_quota";
      case Status::BadRequest:
        return "bad_request";
      case Status::Draining:
        return "draining";
    }
    return "unknown";
}

Status
statusFromErrc(RouteErrc e) noexcept
{
    // RouteErrc values are the low range of Status by construction.
    return static_cast<Status>(static_cast<std::uint8_t>(e));
}

MsgType
messageType(const Message &m) noexcept
{
    struct Visitor
    {
        MsgType operator()(const SubmitMsg &) { return MsgType::Submit; }
        MsgType
        operator()(const SubmitResultMsg &)
        {
            return MsgType::SubmitResult;
        }
        MsgType operator()(const HealthMsg &) { return MsgType::Health; }
        MsgType
        operator()(const HealthResultMsg &)
        {
            return MsgType::HealthResult;
        }
        MsgType operator()(const StatsMsg &) { return MsgType::Stats; }
        MsgType
        operator()(const StatsResultMsg &)
        {
            return MsgType::StatsResult;
        }
    };
    return std::visit(Visitor{}, m);
}

void
encode(const Message &m, std::vector<std::uint8_t> &out)
{
    const std::size_t frame_start = out.size();
    putU32(out, 0); // length backpatched below
    std::visit([&out](const auto &msg) { encodeBody(msg, out); }, m);
    const std::size_t body_len = out.size() - frame_start - 4;
    out[frame_start] = static_cast<std::uint8_t>(body_len);
    out[frame_start + 1] = static_cast<std::uint8_t>(body_len >> 8);
    out[frame_start + 2] = static_cast<std::uint8_t>(body_len >> 16);
    out[frame_start + 3] = static_cast<std::uint8_t>(body_len >> 24);
}

void
Decoder::feed(const std::uint8_t *data, std::size_t len)
{
    // Compact once the consumed prefix dominates, so a long-lived
    // connection's buffer does not grow with total traffic.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + len);
}

DecodeStatus
Decoder::next(Message &out, std::string *error)
{
    if (poisoned_) {
        if (error)
            *error = "decoder poisoned by earlier protocol error";
        return DecodeStatus::Error;
    }
    if (buffered() < 4)
        return DecodeStatus::NeedMore;
    const std::uint8_t *base = buf_.data() + pos_;
    const std::uint32_t body_len =
        static_cast<std::uint32_t>(base[0]) |
        static_cast<std::uint32_t>(base[1]) << 8 |
        static_cast<std::uint32_t>(base[2]) << 16 |
        static_cast<std::uint32_t>(base[3]) << 24;
    if (body_len < 1 || body_len > max_frame_) {
        poisoned_ = true;
        if (error)
            *error = "frame length " + std::to_string(body_len) +
                     " outside [1, " + std::to_string(max_frame_) +
                     "]";
        return DecodeStatus::Error;
    }
    if (buffered() < 4 + std::size_t{body_len})
        return DecodeStatus::NeedMore;

    Reader r{base + 4 + 1, std::size_t{body_len} - 1, 0, true};
    const std::uint8_t type = base[4];
    bool ok = false;
    switch (static_cast<MsgType>(type)) {
      case MsgType::Submit: {
        SubmitMsg m;
        ok = decodeBody(r, m, error) && r.consumed();
        if (ok)
            out = std::move(m);
        break;
      }
      case MsgType::SubmitResult: {
        SubmitResultMsg m;
        ok = decodeBody(r, m, error) && r.consumed();
        if (ok)
            out = std::move(m);
        break;
      }
      case MsgType::Health: {
        ok = r.consumed();
        if (ok)
            out = HealthMsg{};
        else if (error)
            *error = "health body must be empty";
        break;
      }
      case MsgType::HealthResult: {
        HealthResultMsg m;
        ok = decodeBody(r, m, error);
        if (ok)
            out = std::move(m);
        break;
      }
      case MsgType::Stats: {
        StatsMsg m;
        m.format = static_cast<StatsFormat>(r.getU8());
        ok = r.consumed() &&
             (m.format == StatsFormat::PrometheusText ||
              m.format == StatsFormat::Json);
        if (ok)
            out = std::move(m);
        else if (error)
            *error = "stats body malformed";
        break;
      }
      case MsgType::StatsResult: {
        StatsResultMsg m;
        ok = decodeBody(r, m, error) && r.consumed();
        if (ok)
            out = std::move(m);
        break;
      }
      default:
        if (error)
            *error = "unknown message type " + std::to_string(type);
        break;
    }
    if (!ok) {
        poisoned_ = true;
        if (error && error->empty())
            *error = "malformed frame body";
        return DecodeStatus::Error;
    }
    pos_ += 4 + std::size_t{body_len};
    return DecodeStatus::Ok;
}

} // namespace net
} // namespace srbenes
