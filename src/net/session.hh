/**
 * @file
 * Per-tenant admission control: token buckets over the submit
 * stream, instrumented per tenant through srb_obs.
 *
 * Every Submit names a tenant (a caller-chosen u64); the quota
 * manager keeps one token bucket per tenant, refilled continuously
 * at `rate_per_sec` up to `burst`. A submit that finds the bucket
 * empty is refused with Status::OverQuota BEFORE it touches the
 * stream engine, so one chatty tenant cannot occupy ring slots that
 * back other tenants' SLOs — quota refusal is admission control,
 * distinct from Status::Shed which means the fabric itself (rings
 * full) pushed back.
 *
 * The tenant table is bounded: the first `max_tenants` distinct
 * tenants get their own bucket and their own labeled metric series
 * (`srbd_tenant_admitted_total{tenant="..."}`,
 * `srbd_tenant_rejected_total`, `srbd_tenant_tokens`); tenants past
 * the cap share one "overflow" bucket and series, keeping the
 * registry's series count — and the exposition size — bounded no
 * matter what tenant ids clients invent.
 *
 * Single-threaded: called only from the server's event-loop thread,
 * so the table needs no lock. Metric reads are cross-thread-safe as
 * all registry instruments are.
 */

#ifndef SRBENES_NET_SESSION_HH
#define SRBENES_NET_SESSION_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "obs/metrics.hh"

namespace srbenes
{
namespace net
{

struct QuotaOptions
{
    /** Sustained submits/sec per tenant; 0 disables quotas. */
    double rate_per_sec = 0;
    /** Bucket depth: the burst a quiet tenant may spend at once.
     *  0 defaults to one second of rate. */
    double burst = 0;
    /** Distinct tenants with private buckets and metric series. */
    std::size_t max_tenants = 64;
};

class QuotaManager
{
  public:
    QuotaManager(QuotaOptions opts, obs::MetricsRegistry *metrics);

    /**
     * Charge one submit to @p tenant at time @p now_ns
     * (obs::monotonicNs domain). True = admitted.
     */
    bool tryAdmit(std::uint64_t tenant, std::uint64_t now_ns);

    bool enabled() const { return opts_.rate_per_sec > 0; }

    /** Distinct tenants holding a private bucket. */
    std::size_t tenants() const { return buckets_.size(); }

  private:
    struct Bucket
    {
        double tokens = 0;
        std::uint64_t last_ns = 0;
        obs::Counter *admitted = nullptr;
        obs::Counter *rejected = nullptr;
        obs::Gauge *level = nullptr;
    };

    Bucket &bucketFor(std::uint64_t tenant, std::uint64_t now_ns);
    Bucket makeBucket(const std::string &label,
                      std::uint64_t now_ns) const;
    bool charge(Bucket &b, std::uint64_t now_ns);

    QuotaOptions opts_;
    obs::MetricsRegistry *metrics_;
    std::unordered_map<std::uint64_t, Bucket> buckets_;
    Bucket overflow_;
    bool overflow_ready_ = false;
};

} // namespace net
} // namespace srbenes

#endif // SRBENES_NET_SESSION_HH
