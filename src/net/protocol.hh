/**
 * @file
 * srbd wire protocol: the compact length-prefixed binary frames the
 * routing daemon speaks on its socket.
 *
 * A frame is a 4-byte little-endian body length followed by the
 * body; the body's first byte is the message type. Integers are
 * little-endian, fixed width, unaligned. There is no negotiation
 * and no versioned handshake — the protocol is deliberately small
 * enough that a client can be written from this header alone:
 *
 *   Submit        u64 id, u64 tenant, u64 deadline_rel_ns,
 *                 u32 num_lines, u8 has_payload,
 *                 num_lines x u32 dest[, num_lines x u64 payload]
 *   SubmitResult  u64 id, u8 status, u8 tier, u64 server_ns,
 *                 u32 payload_count[, payload_count x u64 payload]
 *   Health        (empty)
 *   HealthResult  u8 state, u32 n, u32 workers, u64 uptime_ns,
 *                 u64 served, u64 inflight
 *   Stats         u8 format (0 = Prometheus text, 1 = JSON)
 *   StatsResult   u8 format, u32 len, len x u8 body
 *
 * Every Submit receives exactly one SubmitResult carrying the
 * client-chosen id — including refusals (shed, over-quota,
 * draining, bad-request), so a client can always account for every
 * request it sent. Status is the wire superset of RouteErrc: the
 * in-process taxonomy plus the service-level refusals that only
 * exist once a socket and a tenant sit in front of the fabric.
 *
 * The Decoder is a pull parser over a growing byte buffer. It
 * never throws and never reads out of bounds: a frame longer than
 * the configured maximum, an unknown type, or a body that does not
 * parse exactly (trailing bytes included) yields
 * DecodeStatus::Error, after which the connection must be closed —
 * there is no resynchronization in a length-prefixed stream.
 */

#ifndef SRBENES_NET_PROTOCOL_HH
#define SRBENES_NET_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bitops.hh"
#include "core/route_outcome.hh"

namespace srbenes
{
namespace net
{

/** Body type tag, the first byte of every frame body. */
enum class MsgType : std::uint8_t
{
    Submit = 1,
    SubmitResult = 2,
    Health = 3,
    HealthResult = 4,
    Stats = 5,
    StatsResult = 6,
};

/**
 * Wire status of one submission: RouteErrc verbatim (same values)
 * plus the service-level refusals a bare fabric cannot produce.
 */
enum class Status : std::uint8_t
{
    Ok = 0,
    NotInF = 1,
    FaultDetected = 2,
    DeadlineExceeded = 3,
    Shed = 4,
    /** Tenant token bucket empty; retry after its refill horizon. */
    OverQuota = 16,
    /** Malformed request semantics (size mismatch, not a
     *  permutation) — the frame itself was well-formed. */
    BadRequest = 17,
    /** The daemon is draining and accepts no new work. */
    Draining = 18,
};

const char *statusName(Status s) noexcept;
Status statusFromErrc(RouteErrc e) noexcept;

/** HealthResult.state values. */
enum class ServeState : std::uint8_t
{
    Serving = 0,
    Draining = 1,
};

/** StatsResult / Stats format selector. */
enum class StatsFormat : std::uint8_t
{
    PrometheusText = 0,
    Json = 1,
};

struct SubmitMsg
{
    std::uint64_t id = 0;
    std::uint64_t tenant = 0;
    /** Relative deadline; 0 = the server's default. */
    std::uint64_t deadline_rel_ns = 0;
    /** Destination tags: input i goes to output dest[i]. */
    std::vector<Word> dest;
    bool has_payload = false;
    /** One word per line when has_payload; routed and echoed back. */
    std::vector<Word> payload;

    bool operator==(const SubmitMsg &) const = default;
};

struct SubmitResultMsg
{
    std::uint64_t id = 0;
    Status status = Status::Ok;
    ServeTier tier = ServeTier::Primary;
    /** Server-side submit→complete time for the request. */
    std::uint64_t server_ns = 0;
    /** Routed payload when the request carried one and succeeded;
     *  empty otherwise. */
    std::vector<Word> payload;

    bool operator==(const SubmitResultMsg &) const = default;
};

struct HealthMsg
{
    bool operator==(const HealthMsg &) const = default;
};

struct HealthResultMsg
{
    ServeState state = ServeState::Serving;
    std::uint32_t n = 0;
    std::uint32_t workers = 0;
    std::uint64_t uptime_ns = 0;
    std::uint64_t served = 0;
    std::uint64_t inflight = 0;

    bool operator==(const HealthResultMsg &) const = default;
};

struct StatsMsg
{
    StatsFormat format = StatsFormat::PrometheusText;

    bool operator==(const StatsMsg &) const = default;
};

struct StatsResultMsg
{
    StatsFormat format = StatsFormat::PrometheusText;
    std::string body;

    bool operator==(const StatsResultMsg &) const = default;
};

using Message = std::variant<SubmitMsg, SubmitResultMsg, HealthMsg,
                             HealthResultMsg, StatsMsg, StatsResultMsg>;

/** MsgType tag of a Message variant. */
MsgType messageType(const Message &m) noexcept;

/** Frames larger than this are a protocol error by default. */
constexpr std::size_t kDefaultMaxFrame = 1u << 20;

/** Serialize @p m as one complete frame appended to @p out. */
void encode(const Message &m, std::vector<std::uint8_t> &out);

enum class DecodeStatus
{
    Ok,       //!< one message extracted
    NeedMore, //!< buffer holds no complete frame yet
    Error,    //!< unrecoverable; close the connection
};

/**
 * Incremental frame parser: feed() raw bytes as they arrive, pull
 * complete messages with next(). After Error the decoder is poisoned
 * and every further next() returns Error.
 */
class Decoder
{
  public:
    explicit Decoder(std::size_t max_frame = kDefaultMaxFrame)
        : max_frame_(max_frame)
    {
    }

    void feed(const std::uint8_t *data, std::size_t len);

    DecodeStatus next(Message &out, std::string *error = nullptr);

    /** Bytes buffered but not yet consumed by next(). */
    std::size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::size_t max_frame_;
    bool poisoned_ = false;
};

} // namespace net
} // namespace srbenes

#endif // SRBENES_NET_PROTOCOL_HH
