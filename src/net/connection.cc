/**
 * @file
 * Connection I/O. Both directions run until EAGAIN so the server
 * can use level-triggered epoll without starving anyone: reads stop
 * when the kernel buffer is dry, writes stop when the socket stops
 * accepting.
 */

#include "net/connection.hh"

#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>

namespace srbenes
{
namespace net
{

Connection::Connection(int fd, std::uint64_t id,
                       std::size_t max_frame)
    : fd_(fd), id_(id), decoder_(max_frame)
{
}

Connection::~Connection()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Connection::ReadResult
Connection::readReady(std::vector<Message> &msgs, std::string *error)
{
    std::uint8_t chunk[65536];
    for (;;) {
        const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (got > 0) {
            decoder_.feed(chunk, static_cast<std::size_t>(got));
            if (static_cast<std::size_t>(got) < sizeof(chunk))
                break; // kernel buffer drained
            continue;
        }
        if (got == 0)
            return ReadResult::Closed;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        return ReadResult::Closed;
    }
    for (;;) {
        Message m;
        switch (decoder_.next(m, error)) {
          case DecodeStatus::Ok:
            msgs.push_back(std::move(m));
            continue;
          case DecodeStatus::NeedMore:
            return ReadResult::Ok;
          case DecodeStatus::Error:
            return ReadResult::ProtocolError;
        }
    }
}

void
Connection::queue(const Message &m)
{
    // Compact the flushed prefix before it dominates the buffer.
    if (out_pos_ > 65536 && out_pos_ * 2 > out_.size()) {
        out_.erase(out_.begin(),
                   out_.begin() +
                       static_cast<std::ptrdiff_t>(out_pos_));
        out_pos_ = 0;
    }
    encode(m, out_);
}

bool
Connection::flush()
{
    while (pendingOut() > 0) {
        const ssize_t sent =
            ::send(fd_, out_.data() + out_pos_, pendingOut(),
                   MSG_NOSIGNAL);
        if (sent > 0) {
            out_pos_ += static_cast<std::size_t>(sent);
            continue;
        }
        if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;
        if (sent < 0 && errno == EINTR)
            continue;
        return false;
    }
    if (out_pos_ == out_.size()) {
        out_.clear();
        out_pos_ = 0;
    }
    return true;
}

} // namespace net
} // namespace srbenes
