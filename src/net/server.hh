/**
 * @file
 * srbd: the network front door of the routing fabric (DESIGN.md
 * "serving" layer). One epoll thread owns every socket and acts as
 * the single producer of a StreamEngine; the engine's worker
 * threads do the routing and wake the loop back up through
 * StreamOptions::result_notify.
 *
 *   clients ──TCP──▶ event loop ──StreamEngine rings──▶ workers
 *      ▲                 │  ▲                              │
 *      └── SubmitResult ─┘  └──── result_notify (eventfd) ─┘
 *
 * Admission runs in strict order before a request touches a ring:
 *
 *   draining?            → Status::Draining
 *   shape/validity wrong → Status::BadRequest
 *   tenant bucket empty  → Status::OverQuota   (QuotaManager)
 *   connection at cap, or
 *   engine rings full    → Status::Shed        (backpressure)
 *
 * so the engine's shed-on-full-ring semantics surface on the wire
 * unchanged, and a slow READER is handled one layer up: when a
 * connection's out-buffer passes the high watermark the server
 * stops reading that socket (EPOLLIN off) until it drains — TCP
 * then pushes back on the client.
 *
 * Graceful drain (SIGTERM → requestDrain(), async-signal-safe):
 * stop accepting, answer new submits with Draining, let every
 * in-flight request finish through the engine
 * (Producer::inFlight() == 0), flush every out-buffer, close, and
 * return from serve() — the daemon then exits 0 with no request
 * unanswered.
 */

#ifndef SRBENES_NET_SERVER_HH
#define SRBENES_NET_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/stream.hh"
#include "net/connection.hh"
#include "net/event_loop.hh"
#include "net/session.hh"

namespace srbenes
{
namespace net
{

struct ServerOptions
{
    /** Loopback by default; the daemon flag widens it. */
    std::string bind_address = "127.0.0.1";
    /** 0 = ephemeral (read the result from port()). */
    std::uint16_t port = 0;
    /** Fabric size exponent (N = 2^n lines). */
    unsigned n = 10;
    /** Engine configuration; producers is forced to 1 (the loop). */
    StreamOptions stream;
    QuotaOptions quota;
    std::size_t max_frame_bytes = kDefaultMaxFrame;
    std::size_t max_connections = 256;
    /** Per-connection in-flight cap before submits shed. */
    std::size_t max_conn_inflight = 4096;
    /** Pause reading a connection above this many queued-out bytes. */
    std::size_t write_high_watermark = 4u << 20;
    /** Resume reading below this. */
    std::size_t write_low_watermark = 1u << 20;
    /** Force-close connections still unflushed this long into a
     *  drain. */
    std::uint64_t drain_grace_ms = 10000;
    obs::MetricsRegistry *metrics = obs::defaultRegistry();
};

/**
 * Counter snapshot for tests and the bench (not an exporter) — a
 * view over the registry instruments, all zeros when
 * ServerOptions::metrics was nullptr. Safe to read from any thread
 * at any time.
 */
struct ServerStats
{
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t rejected_connections = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t submits = 0;
    std::uint64_t responses = 0;
    std::uint64_t ok = 0;
    std::uint64_t bad_requests = 0;
    std::uint64_t quota_rejected = 0;
    std::uint64_t sheds = 0;
    std::uint64_t draining_rejected = 0;
    std::uint64_t orphaned_results = 0;
    std::uint64_t inflight = 0;
};

class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** False when the listen socket or epoll failed to come up. */
    bool valid() const { return listen_fd_ >= 0 && loop_.valid(); }

    /** The bound port (resolves an ephemeral request). */
    std::uint16_t port() const { return port_; }

    unsigned n() const { return opts_.n; }
    Word numLines() const { return Word{1} << opts_.n; }

    /**
     * Run the accept/serve/drain loop on the calling thread until a
     * drain completes. Returns true iff the drain finished with no
     * request unanswered and every response flushed.
     */
    bool serve();

    /** serve() on a background thread (tests, in-process bench). */
    void start();
    /** Join the background thread; returns serve()'s result. */
    bool awaitStop();

    /**
     * Begin graceful shutdown. Async-signal-safe and callable from
     * any thread: flips an atomic and pokes the loop's eventfd.
     */
    void requestDrain();

    bool draining() const
    {
        // order: relaxed; an advisory cross-thread peek, the loop
        // re-reads it after every wakeup.
        return drain_requested_.load(std::memory_order_relaxed);
    }

    ServerStats stats() const;

  private:
    struct Pending
    {
        std::uint64_t conn_id;
        std::uint64_t client_id;
        bool had_payload;
    };

    void onAccept();
    void onConnEvent(std::uint64_t conn_id, std::uint32_t events);
    void handleMessage(Connection &conn, Message &&msg);
    void handleSubmit(Connection &conn, SubmitMsg &&m);
    void respond(Connection &conn, SubmitResultMsg &&m);
    void pumpResults();
    void flushConnection(Connection &conn);
    void updateMask(Connection &conn);
    void closeConnection(std::uint64_t conn_id);
    bool drainComplete();

    ServerOptions opts_;
    EventLoop loop_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::unique_ptr<StreamEngine> engine_;
    StreamEngine::Producer *producer_ = nullptr;
    QuotaManager quotas_;

    std::unordered_map<std::uint64_t, std::unique_ptr<Connection>>
        conns_;
    std::unordered_map<std::uint64_t, Pending> pending_;
    std::uint64_t next_conn_id_ = 1;
    std::uint64_t next_request_id_ = 1;
    std::uint64_t start_ns_ = 0;

    std::atomic<bool> drain_requested_{false};
    bool accepting_ = true;
    std::uint64_t drain_begin_ns_ = 0;
    bool drain_clean_ = true;

    std::thread thread_;
    bool serve_result_ = false;

    /** @{ Registry instruments; null when metrics are off. */
    obs::Counter *c_accepted_ = nullptr;
    obs::Counter *c_closed_ = nullptr;
    obs::Counter *c_conn_rejected_ = nullptr;
    obs::Counter *c_protocol_errors_ = nullptr;
    obs::Counter *c_submits_ = nullptr;
    obs::Counter *c_ok_ = nullptr;
    obs::Counter *c_bad_requests_ = nullptr;
    obs::Counter *c_quota_rejected_ = nullptr;
    obs::Counter *c_sheds_ = nullptr;
    obs::Counter *c_draining_rejected_ = nullptr;
    obs::Counter *c_orphaned_ = nullptr;
    obs::Counter *c_responses_ = nullptr;
    obs::Gauge *g_connections_ = nullptr;
    obs::Gauge *g_inflight_ = nullptr;
    obs::Histogram *h_serve_ns_ = nullptr;
    /** @} */
};

} // namespace net
} // namespace srbenes

#endif // SRBENES_NET_SERVER_HH
