/**
 * @file
 * srbd server implementation. Single-threaded invariant: everything
 * in here except requestDrain() and stats() runs on the serve()
 * thread, so connection and pending-request state needs no locks.
 * The engine's worker threads only touch the engine's own rings and
 * the loop's wakeup eventfd.
 */

#include "net/server.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "common/logging.hh"
#include "obs/export.hh"
#include "perm/permutation.hh"

namespace srbenes
{
namespace net
{
namespace
{

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::uint64_t
counterValue(const obs::Counter *c)
{
    return c != nullptr ? c->value() : 0;
}

} // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), quotas_(opts_.quota, opts_.metrics)
{
    // The event loop is the engine's single producer; its workers
    // wake the loop through the eventfd when a result lands.
    opts_.stream.producers = 1;
    opts_.stream.metrics = opts_.metrics;
    opts_.stream.result_notify = [this](unsigned) { loop_.wakeup(); };
    engine_ = std::make_unique<StreamEngine>(opts_.n, opts_.stream);
    producer_ = &engine_->producer(0);

    if (obs::MetricsRegistry *reg = opts_.metrics) {
        c_accepted_ =
            &reg->counter("srbd_connections_accepted_total");
        c_closed_ = &reg->counter("srbd_connections_closed_total");
        c_conn_rejected_ =
            &reg->counter("srbd_connections_rejected_total");
        c_protocol_errors_ =
            &reg->counter("srbd_protocol_errors_total");
        c_submits_ = &reg->counter("srbd_submits_total");
        c_ok_ = &reg->counter("srbd_responses_total",
                              {{"status", "ok"}});
        c_bad_requests_ = &reg->counter("srbd_responses_total",
                                        {{"status", "bad_request"}});
        c_quota_rejected_ = &reg->counter(
            "srbd_responses_total", {{"status", "over_quota"}});
        c_sheds_ =
            &reg->counter("srbd_responses_total", {{"status", "shed"}});
        c_draining_rejected_ = &reg->counter(
            "srbd_responses_total", {{"status", "draining"}});
        c_orphaned_ = &reg->counter("srbd_orphaned_results_total");
        c_responses_ = &reg->counter("srbd_responses_sent_total");
        g_connections_ = &reg->gauge("srbd_active_connections");
        g_inflight_ = &reg->gauge("srbd_inflight_requests");
        h_serve_ns_ = &reg->histogram("srbd_serve_ns");
    }

    if (!loop_.valid())
        return;

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
        warn("srbd: socket() failed: %s", std::strerror(errno));
        return;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts_.port);
    if (::inet_pton(AF_INET, opts_.bind_address.c_str(),
                    &addr.sin_addr) != 1) {
        warn("srbd: bad bind address %s", opts_.bind_address.c_str());
        ::close(listen_fd_);
        listen_fd_ = -1;
        return;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 128) != 0 ||
        !setNonBlocking(listen_fd_)) {
        warn("srbd: bind/listen on %s:%u failed: %s",
             opts_.bind_address.c_str(), unsigned(opts_.port),
             std::strerror(errno));
        ::close(listen_fd_);
        listen_fd_ = -1;
        return;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port_ = ntohs(bound.sin_port);

    loop_.add(listen_fd_, EPOLLIN,
              [this](std::uint32_t) { onAccept(); });
}

Server::~Server()
{
    if (thread_.joinable()) {
        requestDrain();
        thread_.join();
    }
    if (engine_ && engine_->running())
        engine_->stop();
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
}

void
Server::start()
{
    thread_ = std::thread([this] { serve_result_ = serve(); });
}

bool
Server::awaitStop()
{
    if (thread_.joinable())
        thread_.join();
    return serve_result_;
}

void
Server::requestDrain()
{
    // order: relaxed store + eventfd wakeup; the loop re-reads the
    // flag after epoll_wait returns, so no ordering edge is needed
    // beyond the wakeup itself. Both calls are async-signal-safe.
    drain_requested_.store(true, std::memory_order_relaxed);
    loop_.wakeup();
}

bool
Server::serve()
{
    if (!valid())
        return false;
    start_ns_ = obs::monotonicNs();
    engine_->start();

    for (;;) {
        const bool draining =
            // order: relaxed; see requestDrain().
            drain_requested_.load(std::memory_order_relaxed);
        if (draining && accepting_) {
            // Drain step 1: stop accepting. One final backlog sweep
            // first — a client whose TCP handshake completed before
            // the signal deserves an answer (Draining), not a reset.
            // Connected clients keep their sockets.
            onAccept();
            loop_.del(listen_fd_);
            ::close(listen_fd_);
            listen_fd_ = -1;
            accepting_ = false;
            drain_begin_ns_ = obs::monotonicNs();
        }
        if (!accepting_ && drainComplete()) {
            // Submits that reached the kernel before the drain
            // signal must still be answered: keep taking
            // zero-timeout passes until a pass moves nothing, and
            // only then declare the drain over. Grace expiry bounds
            // a client that chatters forever.
            const bool expired =
                drain_begin_ns_ != 0 &&
                obs::monotonicNs() - drain_begin_ns_ >
                    opts_.drain_grace_ms * 1000000ULL;
            const int events = loop_.runOnce(0);
            if (events < 0)
                break;
            pumpResults();
            if (expired || (events == 0 && drainComplete()))
                break;
            continue;
        }

        // With result_notify wired to the eventfd the loop can
        // sleep: completions, submits, and requestDrain() all wake
        // it. The timeout is only a safety net.
        const int timeout_ms = producer_->inFlight() > 0 ? 10 : 200;
        if (loop_.runOnce(timeout_ms) < 0)
            break;
        pumpResults();
    }

    // Drain step 2 fallback: the loop exits with pending_ empty in
    // the normal case; anything left (grace expiry) is force-closed
    // below and counted against drain_clean_.
    engine_->stop();
    for (auto &[id, conn] : conns_) {
        if (conn->wantsWrite() && !conn->flush())
            drain_clean_ = false;
        if (conn->wantsWrite())
            drain_clean_ = false;
        loop_.del(conn->fd());
        if (c_closed_)
            c_closed_->inc();
    }
    conns_.clear();
    if (g_connections_)
        g_connections_->set(0);
    return drain_clean_ && pending_.empty();
}

bool
Server::drainComplete()
{
    if (!pending_.empty() || producer_->inFlight() > 0) {
        // Grace expiry: a client that stopped reading its socket
        // cannot hold the daemon up forever.
        if (drain_begin_ns_ != 0 &&
            obs::monotonicNs() - drain_begin_ns_ >
                opts_.drain_grace_ms * 1000000ULL) {
            drain_clean_ = false;
            return true;
        }
        return false;
    }
    for (const auto &[id, conn] : conns_)
        if (conn->wantsWrite()) {
            if (drain_begin_ns_ != 0 &&
                obs::monotonicNs() - drain_begin_ns_ >
                    opts_.drain_grace_ms * 1000000ULL) {
                drain_clean_ = false;
                return true;
            }
            return false;
        }
    return true;
}

void
Server::onAccept()
{
    for (;;) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR)
                return;
            warn("srbd: accept failed: %s", std::strerror(errno));
            return;
        }
        if (conns_.size() >= opts_.max_connections) {
            if (c_conn_rejected_)
                c_conn_rejected_->inc();
            ::close(fd);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        const std::uint64_t id = next_conn_id_++;
        auto conn = std::make_unique<Connection>(
            fd, id, opts_.max_frame_bytes);
        loop_.add(fd, EPOLLIN, [this, id](std::uint32_t events) {
            onConnEvent(id, events);
        });
        conns_.emplace(id, std::move(conn));
        if (c_accepted_)
            c_accepted_->inc();
        if (g_connections_)
            g_connections_->set(
                static_cast<std::int64_t>(conns_.size()));
    }
}

void
Server::onConnEvent(std::uint64_t conn_id, std::uint32_t events)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return;
    Connection &conn = *it->second;

    if (events & (EPOLLHUP | EPOLLERR)) {
        closeConnection(conn_id);
        return;
    }
    if ((events & EPOLLOUT) != 0) {
        if (!conn.flush()) {
            closeConnection(conn_id);
            return;
        }
        updateMask(conn);
    }
    if ((events & EPOLLIN) != 0 && !conn.reading_paused) {
        std::vector<Message> msgs;
        std::string error;
        const Connection::ReadResult rr =
            conn.readReady(msgs, &error);
        for (Message &m : msgs) {
            handleMessage(conn, std::move(m));
            if (conns_.find(conn_id) == conns_.end())
                return; // handler closed us
        }
        switch (rr) {
          case Connection::ReadResult::Ok:
            break;
          case Connection::ReadResult::Closed:
            closeConnection(conn_id);
            return;
          case Connection::ReadResult::ProtocolError:
            if (c_protocol_errors_)
                c_protocol_errors_->inc();
            warn("srbd: protocol error on connection %llu: %s",
                 static_cast<unsigned long long>(conn_id),
                 error.c_str());
            closeConnection(conn_id);
            return;
        }
        flushConnection(conn);
    }
}

void
Server::handleMessage(Connection &conn, Message &&msg)
{
    if (auto *submit = std::get_if<SubmitMsg>(&msg)) {
        handleSubmit(conn, std::move(*submit));
        return;
    }
    if (std::get_if<HealthMsg>(&msg) != nullptr) {
        HealthResultMsg h;
        h.state = draining() ? ServeState::Draining
                             : ServeState::Serving;
        h.n = opts_.n;
        h.workers = opts_.stream.workers;
        h.uptime_ns = obs::monotonicNs() - start_ns_;
        h.served = counterValue(c_responses_);
        h.inflight = producer_->inFlight();
        conn.queue(Message{h});
        return;
    }
    if (auto *stats = std::get_if<StatsMsg>(&msg)) {
        StatsResultMsg s;
        s.format = stats->format;
        if (opts_.metrics != nullptr)
            s.body = stats->format == StatsFormat::Json
                         ? obs::exportJson(*opts_.metrics)
                         : obs::exposeText(*opts_.metrics);
        conn.queue(Message{s});
        return;
    }
    // A client has no business sending server-to-client types;
    // treat it as a protocol error and drop the connection.
    if (c_protocol_errors_)
        c_protocol_errors_->inc();
    closeConnection(conn.id());
}

void
Server::respond(Connection &conn, SubmitResultMsg &&m)
{
    switch (m.status) {
      case Status::Ok:
        if (c_ok_)
            c_ok_->inc();
        break;
      case Status::BadRequest:
        if (c_bad_requests_)
            c_bad_requests_->inc();
        break;
      case Status::OverQuota:
        if (c_quota_rejected_)
            c_quota_rejected_->inc();
        break;
      case Status::Shed:
        if (c_sheds_)
            c_sheds_->inc();
        break;
      case Status::Draining:
        if (c_draining_rejected_)
            c_draining_rejected_->inc();
        break;
      default:
        if (opts_.metrics != nullptr)
            opts_.metrics
                ->counter("srbd_responses_total",
                          {{"status", statusName(m.status)}})
                .inc();
        break;
    }
    if (c_responses_)
        c_responses_->inc();
    conn.queue(Message{std::move(m)});
}

void
Server::handleSubmit(Connection &conn, SubmitMsg &&m)
{
    if (c_submits_)
        c_submits_->inc();
    SubmitResultMsg refusal;
    refusal.id = m.id;
    refusal.tier = ServeTier::Failed;

    if (draining()) {
        refusal.status = Status::Draining;
        respond(conn, std::move(refusal));
        return;
    }
    if (m.dest.size() != numLines() ||
        !Permutation::isValid(m.dest)) {
        refusal.status = Status::BadRequest;
        respond(conn, std::move(refusal));
        return;
    }
    const std::uint64_t now = obs::monotonicNs();
    if (!quotas_.tryAdmit(m.tenant, now)) {
        refusal.status = Status::OverQuota;
        respond(conn, std::move(refusal));
        return;
    }
    if (conn.inflight >= opts_.max_conn_inflight) {
        refusal.status = Status::Shed;
        respond(conn, std::move(refusal));
        return;
    }

    auto perm =
        std::make_shared<const Permutation>(std::move(m.dest));
    std::vector<Word> payload;
    if (m.has_payload) {
        payload = std::move(m.payload);
    } else {
        // Control-plane submit: route the identity payload so the
        // serve is still tag-verified end to end, echo nothing.
        payload.resize(numLines());
        for (Word i = 0; i < numLines(); ++i)
            payload[i] = i;
    }
    const std::uint64_t deadline =
        m.deadline_rel_ns != 0 ? now + m.deadline_rel_ns : 0;

    const std::uint64_t sid = next_request_id_++;
    if (!producer_->trySubmit(sid, std::move(perm), payload,
                              deadline)) {
        // Engine backpressure: the affine ring and its spill
        // neighbour are full. This is the wire form of
        // shed-on-full-ring.
        refusal.status = Status::Shed;
        respond(conn, std::move(refusal));
        return;
    }
    pending_.emplace(
        sid, Pending{conn.id(), m.id, m.has_payload});
    ++conn.inflight;
    if (g_inflight_)
        g_inflight_->set(static_cast<std::int64_t>(pending_.size()));
}

void
Server::pumpResults()
{
    StreamResult res;
    bool any = false;
    while (producer_->tryPoll(res)) {
        any = true;
        auto it = pending_.find(res.id);
        if (it == pending_.end()) {
            if (c_orphaned_)
                c_orphaned_->inc();
            continue;
        }
        const Pending p = it->second;
        pending_.erase(it);

        auto cit = conns_.find(p.conn_id);
        if (cit == conns_.end()) {
            // The client went away mid-request; the work is done,
            // the answer has nowhere to go.
            if (c_orphaned_)
                c_orphaned_->inc();
            continue;
        }
        Connection &conn = *cit->second;
        if (conn.inflight > 0)
            --conn.inflight;

        SubmitResultMsg out;
        out.id = p.client_id;
        out.status = statusFromErrc(res.status);
        out.tier = res.tier;
        out.server_ns = res.latencyNs();
        if (p.had_payload && res.ok())
            out.payload = std::move(res.payload);
        if (h_serve_ns_)
            h_serve_ns_->observe(res.latencyNs());
        respond(conn, std::move(out));
        flushConnection(conn);
    }
    if (any && g_inflight_)
        g_inflight_->set(static_cast<std::int64_t>(pending_.size()));
}

void
Server::flushConnection(Connection &conn)
{
    if (!conn.flush()) {
        closeConnection(conn.id());
        return;
    }
    updateMask(conn);
}

void
Server::updateMask(Connection &conn)
{
    // Backpressure on a slow reader: above the high watermark stop
    // reading (and thus admitting) from this client until TCP has
    // taken the backlog back under the low watermark.
    if (!conn.reading_paused &&
        conn.pendingOut() > opts_.write_high_watermark)
        conn.reading_paused = true;
    else if (conn.reading_paused &&
             conn.pendingOut() < opts_.write_low_watermark)
        conn.reading_paused = false;

    std::uint32_t events =
        conn.reading_paused ? 0u : static_cast<std::uint32_t>(EPOLLIN);
    if (conn.wantsWrite())
        events |= EPOLLOUT;
    loop_.mod(conn.fd(), events);
}

void
Server::closeConnection(std::uint64_t conn_id)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return;
    loop_.del(it->second->fd());
    conns_.erase(it);
    if (c_closed_)
        c_closed_->inc();
    if (g_connections_)
        g_connections_->set(static_cast<std::int64_t>(conns_.size()));
}

ServerStats
Server::stats() const
{
    ServerStats s;
    s.accepted = counterValue(c_accepted_);
    s.closed = counterValue(c_closed_);
    s.rejected_connections = counterValue(c_conn_rejected_);
    s.protocol_errors = counterValue(c_protocol_errors_);
    s.submits = counterValue(c_submits_);
    s.responses = counterValue(c_responses_);
    s.ok = counterValue(c_ok_);
    s.bad_requests = counterValue(c_bad_requests_);
    s.quota_rejected = counterValue(c_quota_rejected_);
    s.sheds = counterValue(c_sheds_);
    s.draining_rejected = counterValue(c_draining_rejected_);
    s.orphaned_results = counterValue(c_orphaned_);
    s.inflight =
        g_inflight_ != nullptr
            ? static_cast<std::uint64_t>(g_inflight_->value())
            : 0;
    return s;
}

} // namespace net
} // namespace srbenes
