/**
 * @file
 * epoll wrapper implementation. The wakeup eventfd is registered
 * like any other fd; its handler just drains the counter so the
 * loop's caller can inspect whatever flags prompted the wakeup.
 */

#include "net/event_loop.hh"

#include <cerrno>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include "common/logging.hh"

namespace srbenes
{
namespace net
{

EventLoop::EventLoop()
{
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epoll_fd_ < 0 || wake_fd_ < 0) {
        warn("EventLoop: epoll/eventfd creation failed");
        return;
    }
    add(wake_fd_, EPOLLIN, [this](std::uint32_t) {
        std::uint64_t v;
        // Drain the counter; the POINT of the wakeup is the return
        // from epoll_wait, not the value.
        while (::read(wake_fd_, &v, sizeof(v)) == sizeof(v)) {
        }
    });
}

EventLoop::~EventLoop()
{
    if (wake_fd_ >= 0)
        ::close(wake_fd_);
    if (epoll_fd_ >= 0)
        ::close(epoll_fd_);
}

bool
EventLoop::add(int fd, std::uint32_t events, Handler handler)
{
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
        return false;
    handlers_[fd] = std::move(handler);
    return true;
}

bool
EventLoop::mod(int fd, std::uint32_t events)
{
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void
EventLoop::del(int fd)
{
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    handlers_.erase(fd);
}

int
EventLoop::runOnce(int timeout_ms)
{
    epoll_event events[64];
    const int count =
        ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (count < 0)
        return errno == EINTR ? 0 : -1;
    for (int i = 0; i < count; ++i) {
        // Look the handler up per event: an earlier handler in this
        // batch may have closed this fd (and a reused fd number gets
        // at worst one spurious, EAGAIN-absorbed callback).
        auto it = handlers_.find(events[i].data.fd);
        if (it != handlers_.end())
            it->second(events[i].events);
    }
    return count;
}

void
EventLoop::wakeup()
{
    const std::uint64_t one = 1;
    // write(2) is async-signal-safe; ignore EAGAIN (counter already
    // nonzero means a wakeup is pending anyway).
    [[maybe_unused]] ssize_t rc =
        ::write(wake_fd_, &one, sizeof(one));
}

} // namespace net
} // namespace srbenes
