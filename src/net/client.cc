/**
 * @file
 * Blocking client implementation. receive() pulls from the decoder
 * first, so pipelined frames already buffered never touch the
 * socket again.
 */

#include "net/client.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace srbenes
{
namespace net
{

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::connect(const std::string &host, std::uint16_t port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        close();
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        close();
        return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    decoder_ = Decoder();
    return true;
}

bool
Client::send(const Message &m)
{
    if (fd_ < 0)
        return false;
    std::vector<std::uint8_t> buf;
    encode(m, buf);
    std::size_t off = 0;
    while (off < buf.size()) {
        const ssize_t sent = ::send(fd_, buf.data() + off,
                                    buf.size() - off, MSG_NOSIGNAL);
        if (sent > 0) {
            off += static_cast<std::size_t>(sent);
            continue;
        }
        if (sent < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
Client::receive(Message &out, std::string *error)
{
    bool timed_out = false;
    return receiveFor(out, -1, timed_out, error);
}

bool
Client::receiveFor(Message &out, int timeout_ms, bool &timed_out,
                   std::string *error)
{
    timed_out = false;
    if (fd_ < 0) {
        if (error)
            *error = "not connected";
        return false;
    }
    for (;;) {
        switch (decoder_.next(out, error)) {
          case DecodeStatus::Ok:
            return true;
          case DecodeStatus::Error:
            ++protocol_errors_;
            return false;
          case DecodeStatus::NeedMore:
            break;
        }
        if (timeout_ms >= 0) {
            pollfd pfd{fd_, POLLIN, 0};
            const int rc = ::poll(&pfd, 1, timeout_ms);
            if (rc == 0) {
                timed_out = true;
                return false;
            }
            if (rc < 0 && errno != EINTR) {
                if (error)
                    *error = "poll failed";
                return false;
            }
            if (rc < 0)
                continue;
        }
        std::uint8_t chunk[65536];
        const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (got > 0) {
            decoder_.feed(chunk, static_cast<std::size_t>(got));
            continue;
        }
        if (got < 0 && errno == EINTR)
            continue;
        if (error)
            *error = got == 0 ? "connection closed"
                              : "recv failed";
        return false;
    }
}

bool
Client::roundTrip(const Message &request, Message &response,
                  std::string *error)
{
    return send(request) && receive(response, error);
}

} // namespace net
} // namespace srbenes
