/**
 * @file
 * One accepted client connection: a nonblocking fd plus buffered,
 * framed I/O.
 *
 * Reads feed the protocol Decoder; a protocol error (malformed
 * frame, oversized length, unknown type) poisons the connection —
 * the server counts it and closes the socket, because a
 * length-prefixed stream cannot resynchronize.
 *
 * Writes queue into an out-buffer flushed opportunistically: the
 * server tries an inline flush after queueing and falls back to
 * EPOLLOUT when the socket would block. The out-buffer size is the
 * per-connection backpressure signal — above the server's high
 * watermark the connection stops being read (its EPOLLIN is
 * dropped), which in turn stops admission from that client, the
 * socket analogue of the stream engine's shed-on-full-ring.
 *
 * Owned and driven exclusively by the server's event-loop thread.
 */

#ifndef SRBENES_NET_CONNECTION_HH
#define SRBENES_NET_CONNECTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hh"

namespace srbenes
{
namespace net
{

class Connection
{
  public:
    Connection(int fd, std::uint64_t id, std::size_t max_frame);
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    int fd() const { return fd_; }
    std::uint64_t id() const { return id_; }

    enum class ReadResult
    {
        Ok,            //!< messages (possibly zero) extracted
        Closed,        //!< orderly EOF or a socket error
        ProtocolError, //!< poisoned framing; close and count
    };

    /**
     * Drain the socket's readable bytes and append every complete
     * message to @p msgs. On ProtocolError @p error carries the
     * decoder's explanation.
     */
    ReadResult readReady(std::vector<Message> &msgs,
                         std::string *error = nullptr);

    /** Encode @p m onto the out-buffer (no I/O). */
    void queue(const Message &m);

    /**
     * Flush as much of the out-buffer as the socket accepts.
     * False on a socket error (close the connection).
     */
    bool flush();

    /** Bytes queued but not yet written. */
    std::size_t pendingOut() const { return out_.size() - out_pos_; }

    bool wantsWrite() const { return pendingOut() > 0; }

    /** @{ Server-maintained admission state. */
    std::size_t inflight = 0;
    bool reading_paused = false;
    /** @} */

  private:
    int fd_;
    std::uint64_t id_;
    Decoder decoder_;
    std::vector<std::uint8_t> out_;
    std::size_t out_pos_ = 0;
};

} // namespace net
} // namespace srbenes

#endif // SRBENES_NET_CONNECTION_HH
