/**
 * @file
 * Streaming throughput: the StreamEngine's lock-free pipeline
 * against the same number of plain threads calling Router::route on
 * a shared router.
 *
 * Workload (open loop, both sides identical): a pregenerated
 * schedule over a 16-pattern hot set of F(n) members with a
 * 1/kColdOneIn chance per request of a freshly drawn cold pattern,
 * payloads N words each, n = 8, 10, 12. Payload content is staged
 * by the client: buffers circulate untouched — this measures
 * routing throughput, not payload generation — except that every
 * kParityEvery-th request gets fresh deterministic content on both
 * sides, so the stream side's samples can be verified.
 *
 * The stream side runs one producer pumping submit/poll plus K
 * worker threads, holding a bounded number of requests in flight
 * (maxOutstandingFor) so circulating buffers stay cache-resident;
 * the baseline splits the same schedule across 1+K plain threads,
 * so both sides use the same total thread count. Both sides get an
 * untimed warm prefix.
 *
 *   baseline : per request, Router::route — a scalar FNV hash of the
 *              destination vector, a locked shared-cache probe, and a
 *              freshly allocated result vector;
 *   stream   : per request, a memoized 128-bit hash, an SPSC ring
 *              hop, a lock-free local plan-table probe, a SIMD
 *              gather into recycled storage, and a ring hop back.
 *              At n <= 9 the engine's inline fast path serves the
 *              request on the producer thread instead — no ring
 *              hops at all (the `inline_served` JSON field records
 *              how many requests took it).
 *
 * A final CROSS-WORKER PRESSURE row reruns n = 12 with deliberately
 * hostile stream knobs — tiny per-worker rings (4), a local plan
 * table smaller than the hot set (8 slots), and a deep in-flight
 * window (64) — so affine rings overflow, requests spill to the
 * neighbouring worker, and thrashed local tables fall through to the
 * shared Router tier for plans another worker already planted. This
 * exercises the shared tier's HIT path end-to-end (shared_hits was
 * structurally zero under the affinity-friendly default knobs); the
 * bench exits nonzero if the pressure row records no shared hits.
 *
 * Every ~97th streamed result is checked bit-for-bit against the
 * reference SelfRoutingBenes simulator, outside the timed region.
 * Emits a fixed-width table and machine-readable
 * BENCH_throughput.json.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "sink.hh"
#include "common/prng.hh"
#include "common/table.hh"
#include "core/fast_kernels.hh"
#include "core/router.hh"
#include "core/self_routing.hh"
#include "core/stream.hh"
#include "perm/f_class.hh"

namespace
{

using namespace srbenes;


constexpr unsigned kWorkers = 2;
constexpr unsigned kHotSet = 16;
constexpr unsigned kColdOneIn = 256;
constexpr unsigned kParityEvery = 97;

/**
 * In-flight cap for the stream pump, chosen per payload size so the
 * circulating buffer set (max_out * N words in, the same out) stays
 * cache-resident; it also bounds submit->complete latency under
 * open-loop pressure. Larger payloads want a smaller window.
 */
std::uint64_t
maxOutstandingFor(Word N)
{
    if (N >= 4096)
        return 16;
    if (N >= 1024)
        return 32;
    return 128;
}

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::vector<Word>
iotaPayload(Word size, Word base)
{
    std::vector<Word> v(size);
    for (Word i = 0; i < size; ++i)
        v[i] = base + i;
    return v;
}

/** The request schedule: shared hot patterns plus cold one-offs. */
std::vector<std::shared_ptr<const Permutation>>
makeSchedule(unsigned n, std::uint64_t requests, Prng &prng)
{
    std::vector<std::shared_ptr<const Permutation>> hot;
    for (unsigned i = 0; i < kHotSet; ++i)
        hot.push_back(std::make_shared<const Permutation>(
            randomFMember(n, prng)));
    std::vector<std::shared_ptr<const Permutation>> sched;
    sched.reserve(requests);
    for (std::uint64_t r = 0; r < requests; ++r) {
        if (prng.below(kColdOneIn) == 0)
            sched.push_back(std::make_shared<const Permutation>(
                randomFMember(n, prng)));
        else
            sched.push_back(hot[prng.below(kHotSet)]);
    }
    return sched;
}

/**
 * 1 + kWorkers plain threads splitting @p sched, each calling
 * Router::route on one shared router. Returns aggregate perms/sec.
 */
double
baselineRun(unsigned n,
            const std::vector<std::shared_ptr<const Permutation>> &sched)
{
    const Word N = Word{1} << n;
    const Router router(n, false, /*capacity=*/512, /*shards=*/8);
    const unsigned T = 1 + kWorkers;

    // Warm the cache with the hot prefix so both sides start warm.
    for (std::uint64_t r = 0; r < std::min<std::uint64_t>(
                                  sched.size(), kHotSet);
         ++r)
        bench::sink(router.route(*sched[r], iotaPayload(N, r))[0]);

    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < T; ++t) {
        threads.emplace_back([&, t] {
            std::vector<Word> payload(N);
            // order: acquire pairs with the release store of `go`,
            // so the start timestamp taken before it is visible.
            while (!go.load(std::memory_order_acquire))
                go.wait(false, std::memory_order_acquire);
            for (Word i = 0; i < N; ++i)
                payload[i] = t + i;
            for (std::size_t r = t; r < sched.size(); r += T) {
                // Payloads are staged by the client; only requests
                // the stream side parity-samples get fresh content,
                // so both sides do identical per-request work.
                if (r % kParityEvery == 0)
                    for (Word i = 0; i < N; ++i)
                        payload[i] = r + i;
                bench::sink(router.route(*sched[r], payload)[0]);
            }
        });
    }
    const double t0 = nowSec();
    // order: release publishes the start barrier to the acquire
    // loads in the workers.
    go.store(true, std::memory_order_release);
    go.notify_all();
    for (auto &t : threads)
        t.join();
    const double dt = nowSec() - t0;
    return sched.size() / dt;
}

struct StreamRun
{
    StreamStats stats;
    std::uint64_t parity_samples = 0;
    std::uint64_t parity_failures = 0;
};

/**
 * Hostile knobs for the cross-worker pressure row: rings small
 * enough to overflow (spilling requests to the neighbouring worker),
 * a local plan table too small for the hot set (so it thrashes and
 * keeps consulting the shared tier), and an in-flight window deep
 * enough to keep both rings saturated.
 */
struct PressureKnobs
{
    std::size_t ring_capacity = 4;
    std::size_t local_cache_slots = 8;
    std::uint64_t max_out = 64;
};

/**
 * One producer (this thread) pumping the whole schedule through a
 * StreamEngine with kWorkers workers; payload storage is recycled
 * from polled results, so steady state allocates nothing. When
 * @p pressure is set its knobs replace the throughput-tuned
 * defaults (the cross-worker pressure row).
 */
StreamRun
streamRun(unsigned n,
          const std::vector<std::shared_ptr<const Permutation>> &sched,
          const PressureKnobs *pressure = nullptr)
{
    const Word N = Word{1} << n;
    const std::uint64_t max_out =
        pressure ? pressure->max_out : maxOutstandingFor(N);
    StreamOptions opts;
    opts.workers = kWorkers;
    opts.shared_cache_capacity = 512;
    opts.shared_cache_shards = 8;
    if (pressure) {
        opts.ring_capacity = pressure->ring_capacity;
        opts.local_cache_slots = pressure->local_cache_slots;
    }
    // Correctness here is covered by the sampled parity check below;
    // trust the 128-bit content hash on local hits, as a throughput
    // deployment would.
    opts.verify_local_hits = false;
    StreamEngine eng(n, opts);
    eng.start();
    auto &prod = eng.producer(0);

    StreamRun run;
    std::vector<std::vector<Word>> pool;
    std::vector<StreamResult> sampled; // verified after stop()
    sampled.reserve(sched.size() / kParityEvery + 1);
    StreamResult res;
    auto drainOne = [&](StreamResult &r) {
        bench::sink(r.payload[0]); // client touches its routed data
        if (r.id % kParityEvery == 0)
            sampled.push_back(std::move(r));
        else
            pool.push_back(std::move(r.payload));
    };

    // Untimed warmup, mirroring the baseline's warm prefix: push the
    // schedule's hot patterns through every worker so the timed
    // region starts with warm local plan tables, then restart the
    // stats clock on the drained (quiescent) engine.
    {
        std::uint64_t wid = 0;
        for (unsigned pass = 0; pass < 2 * kWorkers; ++pass)
            for (std::uint64_t r = 0;
                 r < std::min<std::uint64_t>(sched.size(), kHotSet);
                 ++r) {
                std::vector<Word> payload = iotaPayload(N, wid);
                while (!prod.trySubmit(wid, sched[r], payload)) {
                    prod.awaitResult(res);
                    pool.push_back(std::move(res.payload));
                }
                ++wid;
                while (prod.tryPoll(res))
                    pool.push_back(std::move(res.payload));
            }
        while (prod.received() < prod.submitted()) {
            prod.awaitResult(res);
            pool.push_back(std::move(res.payload));
        }
        eng.resetStats();
    }

    for (std::uint64_t id = 0; id < sched.size(); ++id) {
        while (prod.submitted() - prod.received() >= max_out) {
            prod.awaitResult(res);
            drainOne(res);
        }
        std::vector<Word> payload;
        if (!pool.empty()) {
            payload = std::move(pool.back());
            pool.pop_back();
        } else {
            payload.resize(N);
        }
        // Staged payloads: recycled buffers ship as-is; only the
        // parity-sampled ids get fresh deterministic content so the
        // reference simulator can check them bit for bit.
        if (id % kParityEvery == 0)
            for (Word i = 0; i < N; ++i)
                payload[i] = id + i;
        while (!prod.trySubmit(id, sched[id], payload)) {
            prod.awaitResult(res);
            drainOne(res);
        }
        while (prod.tryPoll(res))
            drainOne(res);
    }
    while (prod.received() < prod.submitted()) {
        prod.awaitResult(res);
        drainOne(res);
    }
    eng.stop();
    run.stats = eng.stats();

    // Bit-for-bit parity of the sampled results against the
    // reference simulator, outside the timed region.
    const SelfRoutingBenes net(n);
    for (const StreamResult &r : sampled) {
        ++run.parity_samples;
        const auto ref =
            net.permutePayloads(*sched[r.id], iotaPayload(N, r.id));
        if (!ref || r.payload != *ref)
            ++run.parity_failures;
    }
    return run;
}

struct Row
{
    const char *workload = "hotset";
    unsigned n;
    Word N;
    std::uint64_t requests;
    double baseline_ps;
    StreamRun stream;
};

std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

std::string
fmt2(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

} // namespace

int
main()
{
    std::printf(
        "=== streaming throughput: StreamEngine vs plain threads on "
        "Router::route ===\n"
        "(open-loop schedule: %u-pattern hot set of F members, 1/%u "
        "cold draws;\n both sides use %u threads total; kernels: "
        "%s)\n\n",
        kHotSet, kColdOneIn, 1 + kWorkers, activeKernels().name);

    Prng prng(2026);
    std::vector<Row> rows;
    TextTable table({"workload", "n", "N", "requests",
                     "baseline p/s", "stream p/s", "speedup", "GB/s",
                     "p50 us", "p99 us", "local hit%",
                     "shared hits"});

    struct Config
    {
        unsigned n;
        std::uint64_t requests;
    };
    // SRBENES_BENCH_SMOKE=1: the CI smoke configuration — the same
    // pipeline at a fraction of the schedule, proving the binary
    // and its JSON are healthy without tying up a runner.
    const char *smoke_env = std::getenv("SRBENES_BENCH_SMOKE");
    const bool smoke = smoke_env && smoke_env[0] != '\0' &&
                       !(smoke_env[0] == '0' && smoke_env[1] == '\0');
    std::vector<Config> configs{{8, 60000}, {10, 30000}, {12, 15000}};
    if (smoke)
        configs = {{8, 4000}, {10, 2000}, {12, 1000}};
    const auto sharedHitsOf = [](const StreamStats &st) {
        std::uint64_t hits = 0;
        for (const auto &s : st.shared_shards)
            hits += s.hits;
        return hits;
    };
    const auto emitRow = [&](const Row &row) {
        const StreamStats &st = row.stream.stats;
        table.newRow();
        table.addCell(row.workload);
        table.addCell(row.n);
        table.addCell(row.N);
        table.addCell(row.requests);
        table.addCell(fmt(row.baseline_ps));
        table.addCell(fmt(st.perms_per_sec));
        table.addCell(fmt2(st.perms_per_sec / row.baseline_ps) + "x");
        table.addCell(fmt2(st.payload_gb_per_sec));
        table.addCell(fmt2(st.p50_ns / 1e3));
        table.addCell(fmt2(st.p99_ns / 1e3));
        table.addCell(
            fmt2(100.0 * st.local_hits / st.requests) + "%");
        table.addCell(sharedHitsOf(st));
        if (row.stream.parity_failures)
            std::fprintf(stderr,
                         "PARITY FAILURE: n=%u: %llu of %llu sampled "
                         "results differ from the reference\n",
                         row.n,
                         static_cast<unsigned long long>(
                             row.stream.parity_failures),
                         static_cast<unsigned long long>(
                             row.stream.parity_samples));
    };

    for (const Config cfg : configs) {
        const auto sched = makeSchedule(cfg.n, cfg.requests, prng);

        Row row;
        row.n = cfg.n;
        row.N = Word{1} << cfg.n;
        row.requests = cfg.requests;
        row.baseline_ps = baselineRun(cfg.n, sched);
        row.stream = streamRun(cfg.n, sched);
        rows.push_back(row);
        emitRow(row);
    }

    // Cross-worker pressure: same schedule shape at n = 12, hostile
    // knobs. Affine rings overflow and spill, so the neighbouring
    // worker serves patterns it never planned — shared-tier hits.
    bool pressure_ok = true;
    {
        const PressureKnobs knobs;
        const unsigned n = 12;
        const std::uint64_t requests = smoke ? 1000 : 15000;
        const auto sched = makeSchedule(n, requests, prng);

        Row row;
        row.workload = "pressure";
        row.n = n;
        row.N = Word{1} << n;
        row.requests = requests;
        row.baseline_ps = baselineRun(n, sched);
        row.stream = streamRun(n, sched, &knobs);
        rows.push_back(row);
        emitRow(row);

        if (sharedHitsOf(row.stream.stats) == 0) {
            pressure_ok = false;
            std::fprintf(stderr,
                         "PRESSURE FAILURE: the cross-worker row "
                         "recorded no shared-tier hits\n");
        }
    }

    table.print(std::cout);

    const char *path = "BENCH_throughput.json";
    std::FILE *jf = std::fopen(path, "w");
    if (!jf) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    std::fprintf(jf,
                 "{\n  \"benchmark\": \"throughput\",\n"
                 "  \"unit\": \"perms_per_sec\",\n"
                 "  \"workload\": \"%u-pattern hot set of F members, "
                 "1/%u cold draws, open loop\",\n"
                 "  \"threads_total\": %u,\n"
                 "  \"stream_workers\": %u,\n"
                 "  \"simd\": \"%s\",\n  \"results\": [\n",
                 kHotSet, kColdOneIn, 1 + kWorkers, kWorkers,
                 activeKernels().name);
    bool parity_ok = true;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        const StreamStats &st = r.stream.stats;
        std::uint64_t shared_hits = 0, shared_misses = 0,
                      shared_evictions = 0;
        for (const auto &s : st.shared_shards) {
            shared_hits += s.hits;
            shared_misses += s.misses;
            shared_evictions += s.evictions;
        }
        parity_ok = parity_ok && r.stream.parity_failures == 0;
        std::fprintf(
            jf,
            "    {\"workload\": \"%s\", \"n\": %u, \"N\": %llu, "
            "\"requests\": %llu, "
            "\"baseline_perms_per_sec\": %.0f, "
            "\"stream_perms_per_sec\": %.0f, \"speedup\": %.2f, "
            "\"payload_gb_per_sec\": %.3f, \"p50_ns\": %llu, "
            "\"p99_ns\": %llu, \"local_hits\": %llu, "
            "\"shared_lookups\": %llu, \"shared_hits\": %llu, "
            "\"shared_misses\": %llu, \"shared_evictions\": %llu, "
            "\"inline_served\": %llu, \"sheds\": %llu, "
            "\"parity_samples\": %llu, \"parity_ok\": %s}%s\n",
            r.workload, r.n, static_cast<unsigned long long>(r.N),
            static_cast<unsigned long long>(r.requests),
            r.baseline_ps, st.perms_per_sec,
            st.perms_per_sec / r.baseline_ps, st.payload_gb_per_sec,
            static_cast<unsigned long long>(st.p50_ns),
            static_cast<unsigned long long>(st.p99_ns),
            static_cast<unsigned long long>(st.local_hits),
            static_cast<unsigned long long>(st.shared_lookups),
            static_cast<unsigned long long>(shared_hits),
            static_cast<unsigned long long>(shared_misses),
            static_cast<unsigned long long>(shared_evictions),
            static_cast<unsigned long long>(st.inline_served),
            static_cast<unsigned long long>(st.sheds),
            static_cast<unsigned long long>(r.stream.parity_samples),
            r.stream.parity_failures == 0 ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(jf, "  ]\n}\n");
    std::fclose(jf);
    std::printf("\nwrote %s\n", path);
    return parity_ok && pressure_ok ? 0 : 1;
}
