/**
 * @file
 * Experiment E7 -- the composition theorems of Section II: block
 * permutations (Theorem 4), block-mapped permutations (Theorem 5),
 * hierarchical multi-level permutations including the paper's
 * three-dimensional array example (Theorem 6), and the
 * non-closure-under-product counterexample.
 *
 * Timed section: composite construction plus routing.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "core/self_routing.hh"
#include "perm/compose.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace
{

using namespace srbenes;

Permutation
randomF(unsigned r, Prng &prng)
{
    if (r == 0)
        return Permutation::identity(1);
    return randomFMember(r, prng);
}

void
printComposition()
{
    std::cout << "=== E7: composition theorems (Section II) ===\n\n";

    TextTable table({"construction", "n", "trials", "in F",
                     "expected"});
    Prng prng(9);

    // Theorem 4: random J-partitions, random F blocks.
    {
        const unsigned n = 6;
        const int trials = 100;
        int ok = 0;
        for (int t = 0; t < trials; ++t) {
            const Word mask = prng.below(1u << n);
            const JPartition part(n, mask);
            std::vector<Permutation> gs;
            for (std::size_t b = 0; b < part.numBlocks(); ++b)
                gs.push_back(randomF(part.freeBits(), prng));
            ok += inFClass(blockwisePermutation(n, mask, gs));
        }
        table.addRow({"Theorem 4 (blockwise)", "6",
                      std::to_string(trials), std::to_string(ok),
                      "all"});
    }

    // Theorem 5: blocks also permuted by an F member.
    {
        const unsigned n = 6;
        const int trials = 100;
        int ok = 0;
        for (int t = 0; t < trials; ++t) {
            const Word mask = prng.below(1u << n);
            const JPartition part(n, mask);
            std::vector<Permutation> gs;
            for (std::size_t b = 0; b < part.numBlocks(); ++b)
                gs.push_back(randomF(part.freeBits(), prng));
            ok += inFClass(blockMappedPermutation(
                n, mask, gs, randomF(n - part.freeBits(), prng)));
        }
        table.addRow({"Theorem 5 (block-mapped)", "6",
                      std::to_string(trials), std::to_string(ok),
                      "all"});
    }

    // Theorem 6: random three-level hierarchies.
    {
        const unsigned n = 6;
        const std::vector<Word> masks{0b110000, 0b001100, 0b000011};
        const int trials = 100;
        int ok = 0;
        for (int t = 0; t < trials; ++t) {
            const auto phi = [&](unsigned level,
                                 const std::vector<Word> &) {
                return randomF(popCount(masks[level]), prng);
            };
            ok += inFClass(hierarchicalPermutation(n, masks, phi));
        }
        table.addRow({"Theorem 6 (hierarchical)", "6",
                      std::to_string(trials), std::to_string(ok),
                      "all"});
    }
    table.print(std::cout);

    // The paper's 3-D array example after Theorem 6.
    {
        const unsigned r = 2, s = 2, t = 2, n = r + s + t;
        const Word i_mask = lowMask(r) << (s + t);
        const Word j_mask = lowMask(s) << t;
        const Word k_mask = lowMask(t);
        const auto phi =
            [&](unsigned level,
                const std::vector<Word> &anc) -> Permutation {
            switch (level) {
              case 0:
                return named::pOrderingShift(s, 3, 1);
              case 1:
                return named::bitComplement(t, anc[0])
                    .toPermutation();
              default:
                return named::cyclicShift(r, anc[0] + anc[1]);
            }
        };
        const Permutation g = hierarchicalPermutation(
            n, {j_mask, k_mask, i_mask}, phi);
        std::cout
            << "\npaper 3-D example A(i,j,k) -> A(i', j', k'), "
               "i' = (i+j+k) mod 4, j' = (3j+1) mod 4, k' = j xor k:\n"
            << "  in F(6): " << (inFClass(g) ? "yes" : "NO")
            << ", routes on B(6): "
            << (SelfRoutingBenes(n).route(g).success ? "yes" : "NO")
            << "\n";
    }

    // Non-closure counterexample.
    {
        const Permutation a{3, 0, 1, 2};
        const Permutation b{0, 1, 3, 2};
        const Permutation ab = a.then(b);
        std::cout << "\nnon-closure under product: A = "
                  << a.toString() << " in F: " << inFClass(a)
                  << "; B = " << b.toString()
                  << " in F: " << inFClass(b)
                  << "; A o B = " << ab.toString()
                  << " in F: " << inFClass(ab)
                  << "  (paper: A, B in F(2), A o B not)\n\n";
    }
}

void
BM_TheoremFourConstruction(benchmark::State &state)
{
    const unsigned n = 10;
    Prng prng(3);
    const Word mask = 0b1111100000;
    const JPartition part(n, mask);
    std::vector<Permutation> gs;
    for (std::size_t b = 0; b < part.numBlocks(); ++b)
        gs.push_back(randomF(part.freeBits(), prng));
    for (auto _ : state) {
        auto g = blockwisePermutation(n, mask, gs);
        benchmark::DoNotOptimize(g.dest().data());
    }
}
BENCHMARK(BM_TheoremFourConstruction);

void
BM_HierarchicalConstruction(benchmark::State &state)
{
    const unsigned n = 12;
    const std::vector<Word> masks{0xF00, 0x0F0, 0x00F};
    Prng prng(4);
    std::vector<Permutation> levels{randomF(4, prng),
                                    randomF(4, prng),
                                    randomF(4, prng)};
    const auto phi = [&](unsigned level, const std::vector<Word> &) {
        return levels[level];
    };
    for (auto _ : state) {
        auto g = hierarchicalPermutation(n, masks, phi);
        benchmark::DoNotOptimize(g.dest().data());
    }
}
BENCHMARK(BM_HierarchicalConstruction);

} // namespace

int
main(int argc, char **argv)
{
    printComposition();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
