/**
 * @file
 * Experiment E5 -- the Section III unit-route counts, measured on
 * the machine simulators:
 *
 *   CCC: 2 lg N - 1 interchanges (4 lg N - 2 unit routes if an
 *        interchange costs two);
 *   PSC: 4 lg N - 3 unit routes;
 *   MCC: 7 N^1/2 - 8 unit routes;
 *
 * against the best preprocessing-free general baseline, sorting by
 * destination with Batcher's bitonic network (O(log^2 N) on
 * CCC/PSC). Also reports the class-hint ablations (omega /
 * inverse-omega / BPC fixed-axis skips).
 *
 * Timed section: cccPermute vs bitonicPermuteCube at N = 2^16.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/table.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"
#include "simd/bitonic.hh"
#include "simd/permute.hh"

namespace
{

using namespace srbenes;

void
printRouteCounts()
{
    std::cout << "=== E5: unit routes, F-algorithm vs bitonic-sort "
                 "baseline (Section III) ===\n"
              << "(workload: bit reversal, a member of F(n); the "
                 "baseline works for all N! permutations)\n\n";

    TextTable table({"n", "N", "CCC F-alg", "2lgN-1", "CCC 2-route",
                     "4lgN-2", "PSC F-alg", "4lgN-3", "MCC F-alg",
                     "7rtN-8", "CCC bitonic", "PSC bitonic",
                     "MCC bitonic"});
    for (unsigned n = 2; n <= 12; n += 2) {
        const Permutation d = named::bitReversal(n).toPermutation();
        const Word root = Word{1} << (n / 2);

        CubeMachine ccc(n), ccc2(n, 2), ccc_sort(n);
        ShuffleMachine psc(n), psc_sort(n);
        MeshMachine mcc(n), mcc_sort(n);

        ccc.loadIota(d);
        ccc2.loadIota(d);
        psc.loadIota(d);
        mcc.loadIota(d);
        ccc_sort.loadIota(d);
        psc_sort.loadIota(d);
        mcc_sort.loadIota(d);

        const auto s_ccc = cccPermute(ccc);
        const auto s_ccc2 = cccPermute(ccc2);
        const auto s_psc = pscPermute(psc);
        const auto s_mcc = mccPermute(mcc);
        const auto b_ccc = bitonicPermuteCube(ccc_sort);
        const auto b_psc = bitonicPermuteShuffle(psc_sort);
        const auto b_mcc = bitonicPermuteMesh(mcc_sort);

        table.newRow();
        table.addCell(n);
        table.addCell(Word{1} << n);
        table.addCell(s_ccc.unit_routes);
        table.addCell(std::uint64_t{2} * n - 1);
        table.addCell(s_ccc2.unit_routes);
        table.addCell(std::uint64_t{4} * n - 2);
        table.addCell(s_psc.unit_routes);
        table.addCell(std::uint64_t{4} * n - 3);
        table.addCell(s_mcc.unit_routes);
        table.addCell(7 * root - 8);
        table.addCell(b_ccc.unit_routes);
        table.addCell(b_psc.unit_routes);
        table.addCell(b_mcc.unit_routes);
    }
    table.print(std::cout);

    std::cout << "\n=== E5 ablation: class-hint schedule "
                 "shortcuts ===\n\n";
    TextTable ab({"n", "schedule", "workload", "unit routes",
                  "vs general"});
    for (unsigned n : {4u, 8u, 12u}) {
        const auto add = [&](const char *label, const char *wl,
                             SimdPermuteStats stats,
                             std::uint64_t general) {
            ab.newRow();
            ab.addCell(n);
            ab.addCell(label);
            ab.addCell(wl);
            ab.addCell(stats.unit_routes);
            ab.addCell(static_cast<double>(stats.unit_routes) /
                           static_cast<double>(general),
                       2);
        };

        CubeMachine general(n);
        general.loadIota(named::bitReversal(n).toPermutation());
        const auto g = cccPermute(general);

        CubeMachine omega_m(n);
        omega_m.loadIota(named::cyclicShift(n, 3));
        add("CCC omega", "cyclic shift",
            cccPermute(omega_m, PermClassHint::Omega), g.unit_routes);

        CubeMachine inv_m(n);
        inv_m.loadIota(named::pOrdering(n, 5));
        add("CCC inv-omega", "p-ordering",
            cccPermute(inv_m, PermClassHint::InverseOmega),
            g.unit_routes);

        const BpcSpec seg = named::segmentBitReversal(n, 2);
        CubeMachine bpc_m(n);
        bpc_m.loadIota(seg.toPermutation());
        add("CCC bpc-skip", "low-2-bit reversal",
            cccPermute(bpc_m, PermClassHint::General, &seg),
            g.unit_routes);

        ShuffleMachine psc_omega(n);
        psc_omega.loadIota(named::cyclicShift(n, 3));
        ShuffleMachine psc_general(n);
        psc_general.loadIota(named::bitReversal(n).toPermutation());
        const auto pg = pscPermute(psc_general);
        add("PSC omega", "cyclic shift",
            pscPermute(psc_omega, PermClassHint::Omega),
            pg.unit_routes);
    }
    ab.print(std::cout);
    std::cout << "\n";
}

void
BM_CccFAlgorithm(benchmark::State &state)
{
    const unsigned n = 16;
    CubeMachine m(n);
    const Permutation d = named::bitReversal(n).toPermutation();
    for (auto _ : state) {
        m.loadIota(d);
        auto stats = cccPermute(m);
        benchmark::DoNotOptimize(stats.success);
    }
    state.SetItemsProcessed(state.iterations() * m.numPes());
}
BENCHMARK(BM_CccFAlgorithm);

void
BM_CccBitonicBaseline(benchmark::State &state)
{
    const unsigned n = 16;
    CubeMachine m(n);
    const Permutation d = named::bitReversal(n).toPermutation();
    for (auto _ : state) {
        m.loadIota(d);
        auto stats = bitonicPermuteCube(m);
        benchmark::DoNotOptimize(stats.success);
    }
    state.SetItemsProcessed(state.iterations() * m.numPes());
}
BENCHMARK(BM_CccBitonicBaseline);

} // namespace

int
main(int argc, char **argv)
{
    printRouteCounts();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
