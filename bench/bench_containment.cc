/**
 * @file
 * Experiment E4 -- the containment theorems, measured: Theorem 2
 * (every BPC permutation self-routes), Theorem 3 (every
 * inverse-omega permutation self-routes), the omega-bit extension
 * (every omega permutation routes with stages 0..n-2 forced), and
 * the FUB generators. Each row reports how many of the sampled class
 * members actually routed -- the paper predicts 100% everywhere, and
 * ~0% for the uniform-random control row.
 *
 * Timed section: routing one member of each class at N = 4096.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "core/self_routing.hh"
#include "perm/bpc.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace
{

using namespace srbenes;

/** Sample a random omega permutation by routing random switch
 *  settings through an omega network in reverse: equivalently, the
 *  inverse of a random inverse-omega member. We use inverse
 *  p-ordering compositions as a structured stand-in. */
Permutation
randomOmegaMember(unsigned n, Prng &prng)
{
    // Inverse of an inverse-omega member is an omega member.
    const Word p = 2 * prng.below(Word{1} << (n - 1)) + 1;
    const Word k = prng.below(Word{1} << n);
    return named::pOrderingShift(n, p, k).inverse();
}

void
printContainment()
{
    std::cout << "=== E4: containment sweeps (Theorems 2, 3 and the "
                 "omega bit) ===\n\n";

    TextTable table({"n", "class", "mode", "sampled", "routed",
                     "expected"});
    Prng prng(42);
    for (unsigned n : {4u, 6u, 8u, 10u}) {
        const SelfRoutingBenes net(n);
        const int samples = 300;

        int bpc_ok = 0, inv_ok = 0, omega_ok = 0, fub_ok = 0,
            rand_ok = 0;
        for (int s = 0; s < samples; ++s) {
            bpc_ok += net.route(BpcSpec::random(n, prng)
                                    .toPermutation())
                          .success;

            const Word p = 2 * prng.below(Word{1} << (n - 1)) + 1;
            const Word k = prng.below(Word{1} << n);
            inv_ok +=
                net.route(named::pOrderingShift(n, p, k)).success;

            omega_ok += net.route(randomOmegaMember(n, prng),
                                  RoutingMode::OmegaBit)
                            .success;

            const unsigned seg = 1 + static_cast<unsigned>(
                                         prng.below(n));
            fub_ok += net.route(named::segmentCyclicShift(
                                    n, seg, prng.below(Word{1} << seg)))
                          .success;

            rand_ok += net.route(Permutation::random(
                                     std::size_t{1} << n, prng))
                           .success;
        }

        auto add = [&](const char *cls, const char *mode, int ok,
                       const char *expect) {
            table.newRow();
            table.addCell(n);
            table.addCell(cls);
            table.addCell(mode);
            table.addCell(samples);
            table.addCell(ok);
            table.addCell(expect);
        };
        add("BPC (Thm 2)", "self", bpc_ok, "all");
        add("InvOmega (Thm 3)", "self", inv_ok, "all");
        add("Omega", "omega bit", omega_ok, "all");
        add("FUB delta", "self", fub_ok, "all");
        add("uniform random", "self", rand_ok, "~0");
    }
    table.print(std::cout);
    std::cout << "\n";
}

void
BM_RouteBpcMember(benchmark::State &state)
{
    const unsigned n = 12;
    const SelfRoutingBenes net(n);
    Prng prng(7);
    const Permutation d = BpcSpec::random(n, prng).toPermutation();
    for (auto _ : state) {
        auto res = net.route(d);
        benchmark::DoNotOptimize(res.success);
    }
}
BENCHMARK(BM_RouteBpcMember);

void
BM_RouteOmegaMemberWithOmegaBit(benchmark::State &state)
{
    const unsigned n = 12;
    const SelfRoutingBenes net(n);
    Prng prng(8);
    const Permutation d = randomOmegaMember(n, prng);
    for (auto _ : state) {
        auto res = net.route(d, RoutingMode::OmegaBit);
        benchmark::DoNotOptimize(res.success);
    }
}
BENCHMARK(BM_RouteOmegaMemberWithOmegaBit);

} // namespace

int
main(int argc, char **argv)
{
    printContainment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
