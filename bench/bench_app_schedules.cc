/**
 * @file
 * Experiment E16 (extension) -- whole-application communication
 * schedules on the proposed SIMD organization (Section IV: an
 * E(n)-connected PE array plus the self-routing B(n)). Three
 * classic kernels are expressed as sequences of permutations, each
 * verified to lie in F(n) so the fabric carries the entire schedule
 * with zero setup:
 *
 *   FFT(N):        bit-reversal reorder + lg N butterfly-partner
 *                  exchanges (bit-complement permutations);
 *   bitonic sort:  lg N (lg N + 1)/2 partner exchanges;
 *   Cannon matmul: row/column skew alignments (Theorem 4
 *                  composites) + 2 sqrt(N) rotation steps.
 *
 * For each schedule: passes through the network, non-pipelined
 * clocks, pipelined clocks for a 16-batch stream (Section IV mode),
 * and the CCC unit routes of the same schedule for comparison.
 *
 * Timed section: replaying the FFT schedule through the fabric.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/table.hh"
#include "core/pipeline.hh"
#include "core/self_routing.hh"
#include "perm/compose.hh"
#include "perm/f_class.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"
#include "simd/permute.hh"

namespace
{

using namespace srbenes;

std::vector<Permutation>
fftSchedule(unsigned n)
{
    std::vector<Permutation> sched;
    sched.push_back(named::bitReversal(n).toPermutation());
    for (unsigned s = 0; s < n; ++s)
        sched.push_back(
            named::bitComplement(n, Word{1} << s).toPermutation());
    return sched;
}

std::vector<Permutation>
bitonicSchedule(unsigned n)
{
    std::vector<Permutation> sched;
    for (unsigned merge = 1; merge <= n; ++merge)
        for (unsigned b = merge; b-- > 0;)
            sched.push_back(
                named::bitComplement(n, Word{1} << b)
                    .toPermutation());
    return sched;
}

std::vector<Permutation>
cannonSchedule(unsigned n)
{
    // n even; sqrt(N) x sqrt(N) matrix in row-major order.
    const unsigned m = n / 2;
    const Word side = Word{1} << m;
    const Word col_mask = lowMask(m);
    const Word row_mask = lowMask(n) & ~col_mask;

    std::vector<Permutation> sched;
    // Initial skews: row i shifts left by i; column j shifts up
    // by j.
    std::vector<Permutation> row_shifts, col_shifts;
    for (Word r = 0; r < side; ++r)
        row_shifts.push_back(named::cyclicShift(m, side - r % side));
    sched.push_back(blockwisePermutation(n, row_mask, row_shifts));
    for (Word c = 0; c < side; ++c)
        col_shifts.push_back(named::cyclicShift(m, side - c % side));
    sched.push_back(blockwisePermutation(n, col_mask, col_shifts));
    // sqrt(N) iterations of (shift rows left 1, shift columns up 1).
    const Permutation row_step = blockwisePermutation(
        n, row_mask,
        std::vector<Permutation>(side,
                                 named::cyclicShift(m, side - 1)));
    const Permutation col_step = blockwisePermutation(
        n, col_mask,
        std::vector<Permutation>(side,
                                 named::cyclicShift(m, side - 1)));
    for (Word step = 0; step + 1 < side; ++step) {
        sched.push_back(row_step);
        sched.push_back(col_step);
    }
    return sched;
}

struct ScheduleReport
{
    std::size_t passes = 0;
    bool all_in_f = true;
    std::uint64_t ccc_routes = 0;
    std::uint64_t pipe_clocks_batch16 = 0;
};

ScheduleReport
analyze(unsigned n, const std::vector<Permutation> &sched)
{
    ScheduleReport rep;
    rep.passes = sched.size();

    const SelfRoutingBenes net(n);
    CubeMachine ccc(n);
    for (const auto &p : sched) {
        rep.all_in_f = rep.all_in_f && inFClass(p);
        if (!net.route(p).success)
            rep.all_in_f = false;
        ccc.loadIota(p);
        const auto stats = cccPermute(ccc);
        if (!stats.success)
            rep.all_in_f = false;
        rep.ccc_routes += stats.unit_routes;
    }

    // Pipelined: 16 batches streamed through every pass of the
    // schedule; per pass the pipe drains in (2n-1) + 15 clocks.
    PipelinedBenes pipe(n);
    const std::vector<Word> payload(std::size_t{1} << n, 0);
    for (const auto &p : sched) {
        for (int v = 0; v < 16; ++v)
            pipe.inject(p, payload);
        while (!pipe.drained())
            pipe.clockTick();
    }
    rep.pipe_clocks_batch16 = pipe.cyclesElapsed();
    return rep;
}

void
printSchedules()
{
    std::cout << "=== E16: application communication schedules on "
                 "the self-routing fabric ===\n\n";

    TextTable table({"kernel", "n", "passes", "all in F",
                     "non-pipelined clocks",
                     "pipelined clocks (16 batches)",
                     "CCC unit routes"});
    for (unsigned n : {4u, 6u, 8u}) {
        const struct
        {
            const char *name;
            std::vector<Permutation> sched;
        } kernels[] = {
            {"FFT", fftSchedule(n)},
            {"bitonic sort", bitonicSchedule(n)},
            {"Cannon matmul", cannonSchedule(n)},
        };
        for (const auto &k : kernels) {
            const auto rep = analyze(n, k.sched);
            table.newRow();
            table.addCell(k.name);
            table.addCell(n);
            table.addCell(static_cast<std::uint64_t>(rep.passes));
            table.addCell(rep.all_in_f ? "yes" : "NO");
            table.addCell(static_cast<std::uint64_t>(rep.passes) *
                          (2 * n - 1));
            table.addCell(rep.pipe_clocks_batch16);
            table.addCell(rep.ccc_routes);
        }
    }
    table.print(std::cout);
    std::cout << "\n(every pass of every kernel is in F: the "
                 "network carries complete application schedules "
                 "with zero\nsetup, and pipelining amortizes the "
                 "fill latency across batches)\n\n";
}

void
BM_FftScheduleReplay(benchmark::State &state)
{
    const unsigned n = 10;
    const SelfRoutingBenes net(n);
    const auto sched = fftSchedule(n);
    for (auto _ : state) {
        for (const auto &p : sched) {
            auto res = net.route(p);
            benchmark::DoNotOptimize(res.success);
        }
    }
    state.SetItemsProcessed(state.iterations() * sched.size());
}
BENCHMARK(BM_FftScheduleReplay);

} // namespace

int
main(int argc, char **argv)
{
    printSchedules();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
