/**
 * @file
 * Experiment F4 -- Fig. 4 of the paper: the bit-reversal permutation
 * self-routed through B(3), with the destination tag of every line
 * at every stage and all switch states, exactly the information the
 * figure shows.
 *
 * Timed section: self-routing bit reversal across network sizes
 * (the O(log N) total time claim -- time per line should grow
 * logarithmically).
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "core/render.hh"
#include "core/self_routing.hh"
#include "perm/named_bpc.hh"

namespace
{

using namespace srbenes;

void
printFigFour()
{
    std::cout << "=== Fig. 4: bit reversal self-routed on B(3) ===\n"
              << "(destination tags in binary at the input of every "
                 "stage; compare the figure)\n\n";

    const SelfRoutingBenes net(3);
    RouteTrace trace;
    const auto res = net.route(named::bitReversal(3).toPermutation(),
                               RoutingMode::SelfRouting, &trace);
    std::cout << renderRoute(net.topology(), trace, res) << "\n";
}

void
BM_BitReversalRoute(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const SelfRoutingBenes net(n);
    const Permutation d = named::bitReversal(n).toPermutation();
    for (auto _ : state) {
        auto res = net.route(d);
        benchmark::DoNotOptimize(res.success);
    }
    state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_BitReversalRoute)->DenseRange(4, 18, 2);

} // namespace

int
main(int argc, char **argv)
{
    printFigFour();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
