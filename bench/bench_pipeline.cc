/**
 * @file
 * Experiment E6 -- the Section IV pipelining remark: with registers
 * between stages, the first permuted vector emerges after the
 * 2 lg N - 1 stage latency and every subsequent vector after one
 * clock, even when consecutive vectors use different permutations.
 *
 * Timed section: sustained pipelined throughput in vectors/sec.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "core/pipeline.hh"
#include "perm/bpc.hh"

namespace
{

using namespace srbenes;

void
printPipeline()
{
    std::cout << "=== E6: pipelined operation (Section IV) ===\n"
              << "(K vectors, each with its own random BPC "
                 "permutation)\n\n";

    TextTable table({"n", "N", "latency (2n-1)", "K vectors",
                     "total clocks", "clocks/vector steady",
                     "non-pipelined clocks"});
    Prng prng(1);
    for (unsigned n : {3u, 5u, 8u, 10u}) {
        const int vectors = 64;
        PipelinedBenes pipe(n);

        std::vector<Word> payload(std::size_t{1} << n, 0);
        for (int v = 0; v < vectors; ++v)
            pipe.inject(BpcSpec::random(n, prng).toPermutation(),
                        payload);

        std::uint64_t first = 0, last = 0;
        int got = 0;
        while (!pipe.drained()) {
            const auto out = pipe.clockTick();
            if (!out)
                continue;
            if (got == 0)
                first = pipe.cyclesElapsed();
            last = pipe.cyclesElapsed();
            ++got;
        }

        table.newRow();
        table.addCell(n);
        table.addCell(Word{1} << n);
        table.addCell(first);
        table.addCell(vectors);
        table.addCell(last);
        table.addCell(
            static_cast<double>(last - first) / (vectors - 1), 3);
        table.addCell(static_cast<std::uint64_t>(vectors) *
                      (2 * n - 1));
    }
    table.print(std::cout);
    std::cout << "\n(expected shape: first output at exactly 2n-1; "
                 "steady state exactly 1.0 clock/vector; the\n"
                 "non-pipelined fabric would spend K(2n-1) clocks)\n\n";
}

void
BM_PipelinedThroughput(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    Prng prng(n);
    const Permutation d = BpcSpec::random(n, prng).toPermutation();
    const std::vector<Word> payload(std::size_t{1} << n, 0);

    for (auto _ : state) {
        PipelinedBenes pipe(n);
        constexpr int kVectors = 32;
        for (int v = 0; v < kVectors; ++v)
            pipe.inject(d, payload);
        int got = 0;
        while (!pipe.drained())
            got += pipe.clockTick().has_value();
        benchmark::DoNotOptimize(got);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_PipelinedThroughput)->Arg(6)->Arg(10);

} // namespace

int
main(int argc, char **argv)
{
    printPipeline();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
