/**
 * @file
 * Experiment E14 (extension) -- testability of the self-routing
 * fabric under single stuck-at faults:
 *
 *  - masking: the opening (free-choice) half of the fabric hides
 *    faults from pair-aligned tests because the tag-driven closing
 *    half corrects the alternate decomposition; measured as the
 *    fraction of faults invisible to the identity and to vector
 *    reversal;
 *  - test-set size: how many destination-tag vectors a
 *    detection-driven greedy cover needs to expose every single
 *    stuck-at fault;
 *  - diagnosis resolution: how many candidate faults remain
 *    behaviorally indistinguishable after running the test set.
 *
 * Timed section: faulty-route simulation throughput.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "core/faults.hh"
#include "perm/named_bpc.hh"

namespace
{

using namespace srbenes;

void
printFaultStudy()
{
    std::cout << "=== E14: stuck-at fault testability ===\n\n";

    TextTable table({"n", "switches", "faults", "masked by id",
                     "masked by reversal", "test-set size"});
    Prng prng(21);
    for (unsigned n : {2u, 3u, 4u, 5u}) {
        const SelfRoutingBenes net(n);
        const auto &topo = net.topology();
        const auto id = Permutation::identity(topo.numLines());
        const auto rev =
            named::vectorReversal(n).toPermutation();
        const auto id_tags = net.route(id).output_tags;
        const auto rev_tags = net.route(rev).output_tags;

        Word faults = 0, masked_id = 0, masked_rev = 0;
        for (unsigned s = 0; s < topo.numStages(); ++s) {
            for (Word i = 0; i < topo.switchesPerStage(); ++i) {
                for (std::uint8_t v :
                     {std::uint8_t{0}, std::uint8_t{1}}) {
                    const StuckFault f{s, i, v};
                    ++faults;
                    masked_id +=
                        routeWithFaults(net, id, {f}).output_tags ==
                        id_tags;
                    masked_rev +=
                        routeWithFaults(net, rev, {f}).output_tags ==
                        rev_tags;
                }
            }
        }

        const auto tests = faultTestSet(net, prng);
        table.newRow();
        table.addCell(n);
        table.addCell(topo.numSwitches());
        table.addCell(faults);
        table.addCell(masked_id);
        table.addCell(masked_rev);
        table.addCell(static_cast<std::uint64_t>(tests.size()));
    }
    table.print(std::cout);

    // Diagnosis resolution at n = 3.
    {
        const unsigned n = 3;
        const SelfRoutingBenes net(n);
        const auto tests = faultTestSet(net, prng);
        Word total_candidates = 0, cases = 0;
        for (unsigned s = 0; s < net.topology().numStages(); ++s) {
            for (Word i = 0; i < net.topology().switchesPerStage();
                 ++i) {
                const StuckFault f{s, i, 1};
                std::vector<std::vector<Word>> observed;
                for (const auto &t : tests)
                    observed.push_back(
                        routeWithFaults(net, t, {f}).output_tags);
                total_candidates +=
                    diagnoseSingleFault(net, tests, observed).size();
                ++cases;
            }
        }
        std::cout << "\ndiagnosis resolution (n = 3, stuck-crossed "
                     "faults): "
                  << static_cast<double>(total_candidates) /
                         static_cast<double>(cases)
                  << " candidates per injected fault on average\n";
        std::cout << "(masked opening-half faults keep equivalence "
                     "classes > 1: behaviorally identical stuck "
                     "values are indistinguishable by any tag "
                     "test)\n\n";
    }
}

void
BM_FaultyRoute(benchmark::State &state)
{
    const unsigned n = 10;
    const SelfRoutingBenes net(n);
    Prng prng(n);
    const auto d = named::bitReversal(n).toPermutation();
    const std::vector<StuckFault> faults{{5, 100, 1}, {12, 7, 0}};
    for (auto _ : state) {
        auto res = routeWithFaults(net, d, faults);
        benchmark::DoNotOptimize(res.success);
    }
}
BENCHMARK(BM_FaultyRoute);

} // namespace

int
main(int argc, char **argv)
{
    printFaultStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
