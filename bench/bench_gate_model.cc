/**
 * @file
 * Experiment E9 (extension) -- the paper's hardware claims at gate
 * granularity: "a very simple logic is required in each switch" and
 * "the total switch setting and delay time ... is O(log N)". The
 * gate-level netlist makes both structural: per-switch cost is a
 * constant 2n muxes (plus one AND in the omega-forced stages), and
 * the critical path is one mux level per stage -- 2 lg N - 1 gate
 * delays with setup INCLUDED, because there is no setup.
 *
 * Timed section: full netlist evaluation (every gate toggled) per
 * routed vector.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "gates/baseline_gates.hh"
#include "gates/benes_gates.hh"
#include "gates/pipelined_gates.hh"
#include "perm/bpc.hh"

namespace
{

using namespace srbenes;

void
printGateCosts()
{
    std::cout << "=== E9: gate-level fabric costs ===\n\n";

    TextTable table({"n", "N", "switches", "muxes", "muxes/switch",
                     "and (omega)", "critical path",
                     "2 lg N - 1"});
    for (unsigned n = 2; n <= 10; n += 2) {
        const BenesGateModel pure(n, false);
        const BenesGateModel omega(n, true);
        const Word size = Word{1} << n;
        const Word switches = (2 * n - 1) * size / 2;
        table.newRow();
        table.addCell(n);
        table.addCell(size);
        table.addCell(switches);
        table.addCell(
            static_cast<std::uint64_t>(
                pure.netlist().countOf(GateOp::Mux)));
        table.addCell(static_cast<std::uint64_t>(
            pure.netlist().countOf(GateOp::Mux) / switches));
        table.addCell(static_cast<std::uint64_t>(
            omega.netlist().countOf(GateOp::And)));
        table.addCell(pure.criticalDepth());
        table.addCell(2 * n - 1);
    }
    table.print(std::cout);
    std::cout << "\n(critical path equals the stage count exactly: "
                 "switch setting adds ZERO gate delays -- the "
                 "paper's central claim)\n\n";

    std::cout << "=== E9b: gate depth across self-routing fabrics "
                 "===\n\n";
    TextTable depths({"n", "benes depth", "omega depth",
                      "batcher depth", "batcher/benes"});
    for (unsigned n = 2; n <= 7; ++n) {
        const BenesGateModel benes(n, false);
        const OmegaGateModel omega(n);
        const BatcherGateModel batcher(n);
        depths.newRow();
        depths.addCell(n);
        depths.addCell(benes.criticalDepth());
        depths.addCell(omega.criticalDepth());
        depths.addCell(batcher.criticalDepth());
        depths.addCell(static_cast<double>(batcher.criticalDepth()) /
                           benes.criticalDepth(),
                       2);
    }
    depths.print(std::cout);
    std::cout << "\n(each Batcher comparator stage hides an n-bit "
                 "magnitude compare; the Benes stage is one mux -- "
                 "the\ngate-level version of the O(log N) vs "
                 "O(log^2 N) delay comparison)\n\n";

    std::cout << "=== E9c: pipelined fabric (registers between "
                 "stages, Section IV) ===\n\n";
    TextTable pipe_tbl({"n", "N", "flip-flops", "clock path (muxes)",
                        "fill latency (clocks)"});
    for (unsigned n = 2; n <= 8; n += 2) {
        const PipelinedBenesGateModel model(n);
        pipe_tbl.newRow();
        pipe_tbl.addCell(n);
        pipe_tbl.addCell(Word{1} << n);
        pipe_tbl.addCell(
            static_cast<std::uint64_t>(model.numRegisters()));
        pipe_tbl.addCell(model.clockPathDepth());
        pipe_tbl.addCell(model.latency());
    }
    pipe_tbl.print(std::cout);
    std::cout << "\n(the register-to-register path is ONE mux at "
                 "every size: the pipelined clock period is a "
                 "constant,\nindependent of N -- throughput scales "
                 "while latency stays 2 lg N - 1 clocks)\n\n";
}

void
BM_NetlistEvaluation(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const BenesGateModel model(n, true);
    Prng prng(n);
    const Permutation d = BpcSpec::random(n, prng).toPermutation();
    for (auto _ : state) {
        auto tags = model.simulate(d);
        benchmark::DoNotOptimize(tags.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            model.netlist().numGates());
}
BENCHMARK(BM_NetlistEvaluation)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void
BM_NetlistConstruction(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        BenesGateModel model(n, true);
        benchmark::DoNotOptimize(model.criticalDepth());
    }
}
BENCHMARK(BM_NetlistConstruction)->Arg(4)->Arg(8)->Arg(10);

} // namespace

int
main(int argc, char **argv)
{
    printGateCosts();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
