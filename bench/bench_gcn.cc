/**
 * @file
 * Experiment E11 (extension) -- the paper's opening application:
 * the Benes fabric inside a generalized connection network. Prints
 * the cost of the Benes-sandwich GCN against the O(N^2) crossbar
 * equivalent, and validates fanout-heavy workloads.
 *
 * Timed section: full GCN mapping realization across n.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "networks/gcn.hh"

namespace
{

using namespace srbenes;

void
printGcn()
{
    std::cout << "=== E11: generalized connection network around "
                 "B(n) ===\n\n";

    TextTable table({"n", "N", "benes switches", "copy selectors",
                     "delay stages", "crossbar crosspoints",
                     "hardware ratio"});
    for (unsigned n = 2; n <= 12; n += 2) {
        const GcnNetwork gcn(n);
        const GcnCosts costs = gcn.costs();
        const Word size = Word{1} << n;
        const Word xbar = size * size;
        table.newRow();
        table.addCell(n);
        table.addCell(size);
        table.addCell(costs.binary_switches);
        table.addCell(costs.copy_selectors);
        table.addCell(costs.delay_stages);
        table.addCell(xbar);
        table.addCell(static_cast<double>(xbar) /
                          static_cast<double>(costs.binary_switches +
                                              costs.copy_selectors),
                      2);
    }
    table.print(std::cout);

    // Functional spot check with heavy fanout.
    const unsigned n = 6;
    const GcnNetwork gcn(n);
    const Word size = Word{1} << n;
    std::vector<Word> data(size), src(size);
    for (Word i = 0; i < size; ++i)
        data[i] = 900 + i;
    Prng prng(5);
    for (Word j = 0; j < size; ++j)
        src[j] = prng.below(4); // only 4 hot inputs
    const auto out = gcn.routeMapping(src, data);
    bool ok = true;
    for (Word j = 0; j < size; ++j)
        ok = ok && out[j] == data[src[j]];
    std::cout << "\nhot-input broadcast (64 outputs, 4 sources): "
              << (ok ? "delivered" : "FAILED") << "\n\n";
}

void
BM_GcnMapping(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const GcnNetwork gcn(n);
    const Word size = Word{1} << n;
    Prng prng(n);
    std::vector<Word> data(size), src(size);
    for (Word i = 0; i < size; ++i) {
        data[i] = i;
        src[i] = prng.below(size);
    }
    for (auto _ : state) {
        auto out = gcn.routeMapping(src, data);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * size);
}
BENCHMARK(BM_GcnMapping)->Arg(6)->Arg(10)->Arg(14);

} // namespace

int
main(int argc, char **argv)
{
    printGcn();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
