/**
 * @file
 * Observability overhead: the streaming hot path with the metrics
 * registry attached versus the same run with instrumentation off
 * (StreamOptions::metrics = nullptr, which turns every handle into
 * an untaken null-pointer branch).
 *
 * Workload: the throughput bench's n = 12 open-loop schedule — a
 * 16-pattern hot set of F(n) members with 1/256 cold draws — pumped
 * by one producer through kWorkers stream workers. Per request the
 * instrumented side pays a handful of relaxed atomic adds (request
 * counter, latency histogram, queue-depth gauge) against several
 * microseconds of hashing, ring hops, and a 4096-lane gather, so
 * the budgeted ceiling is 2%.
 *
 * Both configurations run kReps times, interleaved with the order
 * inside each pair alternating (off/on, on/off, ...) so scheduler
 * and thermal drift land on both sides equally. The comparison uses
 * each side's BEST rep (max perms/sec): on a shared box external
 * interference only ever slows a run down, so the fastest rep is
 * the lowest-noise estimate of each configuration's true speed.
 * Emits BENCH_obs_overhead.json with the measured overhead and the
 * verdict against the 2% budget.
 *
 * SRBENES_BENCH_SMOKE=1 shrinks the schedule and rep count for CI
 * smoke runs (the JSON is still written; the verdict is then noise).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "sink.hh"
#include "common/prng.hh"
#include "core/fast_kernels.hh"
#include "core/stream.hh"
#include "obs/metrics.hh"
#include "perm/f_class.hh"

namespace
{

using namespace srbenes;


constexpr unsigned kN = 12;
constexpr unsigned kWorkers = 2;
constexpr unsigned kHotSet = 16;
constexpr unsigned kColdOneIn = 256;
constexpr std::uint64_t kMaxOutstanding = 16;

bool
smokeRun()
{
    const char *env = std::getenv("SRBENES_BENCH_SMOKE");
    return env && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
}

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::vector<std::shared_ptr<const Permutation>>
makeSchedule(unsigned n, std::uint64_t requests, Prng &prng)
{
    std::vector<std::shared_ptr<const Permutation>> hot;
    for (unsigned i = 0; i < kHotSet; ++i)
        hot.push_back(std::make_shared<const Permutation>(
            randomFMember(n, prng)));
    std::vector<std::shared_ptr<const Permutation>> sched;
    sched.reserve(requests);
    for (std::uint64_t r = 0; r < requests; ++r) {
        if (prng.below(kColdOneIn) == 0)
            sched.push_back(std::make_shared<const Permutation>(
                randomFMember(n, prng)));
        else
            sched.push_back(hot[prng.below(kHotSet)]);
    }
    return sched;
}

/**
 * Pump @p sched through a StreamEngine attached to @p metrics
 * (nullptr = instrumentation off) and return timed perms/sec over
 * the post-warmup region. Timing is external (steady clock around
 * the pump loop), so both configurations are measured identically
 * whether or not stats are being collected.
 */
double
runOnce(const std::vector<std::shared_ptr<const Permutation>> &sched,
        obs::MetricsRegistry *metrics)
{
    const Word N = Word{1} << kN;
    StreamOptions opts;
    opts.workers = kWorkers;
    opts.shared_cache_capacity = 512;
    opts.shared_cache_shards = 8;
    opts.verify_local_hits = false;
    opts.metrics = metrics;
    StreamEngine eng(kN, opts);
    eng.start();
    auto &prod = eng.producer(0);

    std::vector<std::vector<Word>> pool;
    StreamResult res;
    auto drainOne = [&](StreamResult &r) {
        bench::sink(r.payload[0]);
        pool.push_back(std::move(r.payload));
    };

    // Untimed warmup: the hot set through every worker.
    std::uint64_t wid = 0;
    for (unsigned pass = 0; pass < 2 * kWorkers; ++pass)
        for (std::uint64_t r = 0;
             r < std::min<std::uint64_t>(sched.size(), kHotSet);
             ++r) {
            std::vector<Word> payload(N);
            for (Word i = 0; i < N; ++i)
                payload[i] = wid + i;
            while (!prod.trySubmit(wid, sched[r], payload)) {
                prod.awaitResult(res);
                drainOne(res);
            }
            ++wid;
            while (prod.tryPoll(res))
                drainOne(res);
        }
    while (prod.received() < prod.submitted()) {
        prod.awaitResult(res);
        drainOne(res);
    }

    const double t0 = nowSec();
    for (std::uint64_t id = 0; id < sched.size(); ++id) {
        while (prod.submitted() - prod.received() >= kMaxOutstanding) {
            prod.awaitResult(res);
            drainOne(res);
        }
        std::vector<Word> payload;
        if (!pool.empty()) {
            payload = std::move(pool.back());
            pool.pop_back();
        } else {
            payload.resize(N);
        }
        while (!prod.trySubmit(id, sched[id], payload)) {
            prod.awaitResult(res);
            drainOne(res);
        }
        while (prod.tryPoll(res))
            drainOne(res);
    }
    while (prod.received() < prod.submitted()) {
        prod.awaitResult(res);
        drainOne(res);
    }
    const double dt = nowSec() - t0;
    eng.stop();
    return sched.size() / dt;
}

double
best(const std::vector<double> &v)
{
    return *std::max_element(v.begin(), v.end());
}

} // namespace

int
main()
{
    const bool smoke = smokeRun();
    const std::uint64_t requests = smoke ? 2000 : 40000;
    const unsigned reps = smoke ? 3 : 7;

    std::printf(
        "=== observability overhead: metrics registry on vs off ===\n"
        "(n=%u stream schedule, %u-pattern hot set, 1/%u cold draws, "
        "%llu requests,\n %u interleaved reps per side, %u workers; "
        "kernels: %s%s)\n\n",
        kN, kHotSet, kColdOneIn,
        static_cast<unsigned long long>(requests), reps, kWorkers,
        activeKernels().name, smoke ? "; SMOKE" : "");

    Prng prng(1980);
    const auto sched = makeSchedule(kN, requests, prng);

    std::vector<double> off_ps, on_ps;
    for (unsigned rep = 0; rep < reps; ++rep) {
        // A fresh registry per rep: registration is the cold path
        // under test too, and instances stay bounded. The pair's
        // order alternates so neither side always runs second.
        obs::MetricsRegistry reg;
        if (rep % 2 == 0) {
            off_ps.push_back(runOnce(sched, nullptr));
            on_ps.push_back(runOnce(sched, &reg));
        } else {
            on_ps.push_back(runOnce(sched, &reg));
            off_ps.push_back(runOnce(sched, nullptr));
        }
        std::printf("rep %u: off %.0f p/s, on %.0f p/s\n", rep,
                    off_ps.back(), on_ps.back());
    }

    const double off_best = best(off_ps);
    const double on_best = best(on_ps);
    const double overhead_pct =
        100.0 * (off_best - on_best) / off_best;
    const bool pass = overhead_pct < 2.0;

    std::printf("\nbest off: %.0f perms/sec\n"
                "best on:  %.0f perms/sec\n"
                "overhead: %.2f%% (budget 2%%) -> %s\n",
                off_best, on_best, overhead_pct,
                pass ? "PASS" : "FAIL");

    const char *path = "BENCH_obs_overhead.json";
    std::FILE *jf = std::fopen(path, "w");
    if (!jf) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    std::fprintf(
        jf,
        "{\n  \"benchmark\": \"obs_overhead\",\n"
        "  \"unit\": \"perms_per_sec\",\n"
        "  \"workload\": \"n=%u stream schedule, %u-pattern hot set, "
        "1/%u cold draws\",\n"
        "  \"requests\": %llu,\n  \"reps\": %u,\n"
        "  \"smoke\": %s,\n  \"simd\": \"%s\",\n"
        "  \"results\": [\n"
        "    {\"metrics\": \"off\", \"best_perms_per_sec\": %.0f},\n"
        "    {\"metrics\": \"on\", \"best_perms_per_sec\": %.0f}\n"
        "  ],\n"
        "  \"overhead_pct\": %.2f,\n"
        "  \"budget_pct\": 2.0,\n"
        "  \"pass\": %s\n}\n",
        kN, kHotSet, kColdOneIn,
        static_cast<unsigned long long>(requests), reps,
        smoke ? "true" : "false", activeKernels().name, off_best,
        on_best, overhead_pct, pass ? "true" : "false");
    std::fclose(jf);
    std::printf("\nwrote %s\n", path);

    // The verdict is recorded in the JSON rather than the exit code:
    // a loaded CI box can make any perf delta flake, and the smoke
    // configuration is deliberately too short to be meaningful.
    return 0;
}
