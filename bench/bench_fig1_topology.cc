/**
 * @file
 * Experiment F1 -- Fig. 1 of the paper: the recursive structure of
 * B(n). Prints the structural inventory (stages, switches per
 * stage, total switches = N log N - N/2) across sizes and dumps the
 * B(3) wiring so the two B(2) subnetworks are visible.
 *
 * Timed section: flattened topology construction.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/table.hh"
#include "core/topology.hh"

namespace
{

using namespace srbenes;

void
printStructure()
{
    std::cout << "=== Fig. 1: Benes network B(n) structure ===\n\n";

    TextTable table({"n", "N", "stages (2n-1)", "switches/stage",
                     "total switches", "N lg N - N/2"});
    for (unsigned n = 1; n <= 12; ++n) {
        const BenesTopology topo(n);
        const Word size = topo.numLines();
        table.newRow();
        table.addCell(n);
        table.addCell(size);
        table.addCell(topo.numStages());
        table.addCell(topo.switchesPerStage());
        table.addCell(topo.numSwitches());
        table.addCell(size * n - size / 2);
    }
    table.print(std::cout);

    std::cout << "\nB(3) inter-stage wiring (boundary: line -> "
                 "line), showing the two B(2) subnetworks on lines "
                 "0-3 / 4-7 of stages 1-3:\n";
    const BenesTopology topo(3);
    for (unsigned s = 0; s + 1 < topo.numStages(); ++s) {
        std::cout << "  boundary " << s << ":";
        for (Word line = 0; line < topo.numLines(); ++line)
            std::cout << " " << line << "->" << topo.wireToNext(s, line);
        std::cout << "\n";
    }
    std::cout << "\n";
}

void
BM_TopologyConstruction(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        BenesTopology topo(n);
        benchmark::DoNotOptimize(topo.numSwitches());
    }
}
BENCHMARK(BM_TopologyConstruction)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

} // namespace

int
main(int argc, char **argv)
{
    printStructure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
