/**
 * @file
 * Service SLO bench: an in-process srbd server soaked by the
 * open-loop load generator over real loopback sockets.
 *
 * Phases, each a fresh loadgen run against one long-lived server
 * (n = 8 fabric, 2 workers):
 *
 *   sweep    : offered-rate sweep — serves/s, p50/p99 client-side
 *              submit→response latency, and shed counts at each
 *              step. Open loop, so overload shows up as latency and
 *              sheds, never as a silently throttled offered rate.
 *   deadline : the sweep's top rate with a tight per-request
 *              deadline, exercising the wire deadline plumbing
 *              (DeadlineExceeded responses are legal here).
 *   quota    : per-tenant token buckets enabled at a rate below the
 *              offered load; a healthy run REFUSES work here
 *              (OverQuota), proving admission control holds the
 *              line before the fabric.
 *
 * After the phases the server is drained mid-connection and must
 * come back clean (every request answered, every buffer flushed).
 * The bench exits nonzero on any lost request, payload mismatch,
 * protocol error, failed drain, or a quota phase that refused
 * nothing. Emits BENCH_service.json. SRBENES_BENCH_SMOKE=1 shrinks
 * rates and durations to CI scale.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hh"
#include "net/loadgen.hh"
#include "net/server.hh"
#include "obs/metrics.hh"

namespace
{

using namespace srbenes;
using namespace srbenes::net;

struct Phase
{
    std::string name;
    LoadgenReport report;
    bool expect_quota_refusals = false;
};

std::string
fmt(double v, const char *spec = "%.0f")
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), spec, v);
    return buf;
}

} // namespace

int
main()
{
    const char *smoke_env = std::getenv("SRBENES_BENCH_SMOKE");
    const bool smoke = smoke_env && smoke_env[0] != '\0' &&
                       !(smoke_env[0] == '0' && smoke_env[1] == '\0');

    constexpr unsigned kN = 8;
    constexpr unsigned kWorkers = 2;
    const std::uint64_t phase_ms = smoke ? 1000 : 5000;
    const std::vector<double> sweep_rates =
        smoke ? std::vector<double>{1000, 4000}
              : std::vector<double>{5000, 20000, 50000};

    std::printf("=== srbd service SLO: open-loop loadgen over "
                "loopback (n=%u, N=%u, %u workers, %llu ms/phase) "
                "===\n\n",
                kN, 1u << kN, kWorkers,
                static_cast<unsigned long long>(phase_ms));

    obs::MetricsRegistry registry;
    ServerOptions sopts;
    sopts.n = kN;
    sopts.stream.workers = kWorkers;
    sopts.metrics = &registry;
    sopts.stream.metrics = &registry;
    auto server = std::make_unique<Server>(std::move(sopts));
    if (!server->valid()) {
        std::fprintf(stderr, "server failed to start\n");
        return 1;
    }
    server->start();

    std::vector<Phase> phases;
    const auto runPhase = [&](const std::string &name,
                              LoadgenOptions opts) {
        opts.port = server->port();
        opts.duration_ms = phase_ms;
        Phase p;
        p.name = name;
        p.report = runLoadgen(opts);
        phases.push_back(p);
        return &phases.back();
    };

    for (double rate : sweep_rates) {
        LoadgenOptions opts;
        opts.rate_per_sec = rate;
        opts.connections = 2;
        runPhase("sweep@" + fmt(rate), opts);
    }
    {
        LoadgenOptions opts;
        opts.rate_per_sec = sweep_rates.back();
        opts.connections = 2;
        // Tight but attainable: an order above the idle p99.
        opts.deadline_rel_ns = 20'000'000;
        runPhase("deadline", opts);
    }

    // Quota phase needs buckets, which live server-side: restart
    // with admission control set well below the offered rate.
    const bool first_drain_clean = [&] {
        server->requestDrain();
        return server->awaitStop();
    }();
    const ServerStats open_stats = server->stats();

    obs::MetricsRegistry quota_registry;
    ServerOptions qopts;
    qopts.n = kN;
    qopts.stream.workers = kWorkers;
    qopts.metrics = &quota_registry;
    qopts.stream.metrics = &quota_registry;
    qopts.quota.rate_per_sec = smoke ? 100 : 1000;
    qopts.quota.burst = 50;
    server = std::make_unique<Server>(std::move(qopts));
    if (!server->valid()) {
        std::fprintf(stderr, "quota server failed to start\n");
        return 1;
    }
    server->start();
    {
        LoadgenOptions opts;
        opts.rate_per_sec = sweep_rates.back();
        opts.connections = 2;
        opts.tenants = 4;
        Phase *p = runPhase("quota", opts);
        p->expect_quota_refusals = true;
    }
    const bool second_drain_clean = [&] {
        server->requestDrain();
        return server->awaitStop();
    }();

    TextTable table({"phase", "offered/s", "achieved/s", "serves/s",
                     "ok", "shed", "quota", "ddl", "lost", "p50 us",
                     "p99 us", "clean"});
    bool all_clean = true;
    bool quota_held = true;
    for (const Phase &p : phases) {
        const LoadgenReport &r = p.report;
        table.newRow();
        table.addCell(p.name);
        table.addCell(fmt(r.offered_rps));
        table.addCell(fmt(r.achieved_rps));
        table.addCell(fmt(r.serves_per_sec));
        table.addCell(r.ok);
        table.addCell(r.shed);
        table.addCell(r.over_quota);
        table.addCell(r.deadline_exceeded);
        table.addCell(r.lost);
        table.addCell(fmt(r.p50_ns / 1e3, "%.1f"));
        table.addCell(fmt(r.p99_ns / 1e3, "%.1f"));
        table.addCell(r.clean() ? "yes" : "NO");
        all_clean = all_clean && r.clean();
        if (p.expect_quota_refusals && r.over_quota == 0)
            quota_held = false;
    }
    table.print(std::cout);
    std::printf("\nserver (open phases): submits=%llu ok=%llu "
                "sheds=%llu protocol_errors=%llu\n"
                "drain: open=%s quota=%s\n",
                static_cast<unsigned long long>(open_stats.submits),
                static_cast<unsigned long long>(open_stats.ok),
                static_cast<unsigned long long>(open_stats.sheds),
                static_cast<unsigned long long>(
                    open_stats.protocol_errors),
                first_drain_clean ? "clean" : "DIRTY",
                second_drain_clean ? "clean" : "DIRTY");

    const char *path = "BENCH_service.json";
    std::FILE *jf = std::fopen(path, "w");
    if (!jf) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    std::fprintf(jf,
                 "{\n  \"benchmark\": \"service\",\n"
                 "  \"unit\": \"serves_per_sec\",\n"
                 "  \"n\": %u,\n  \"workers\": %u,\n"
                 "  \"phase_ms\": %llu,\n"
                 "  \"transport\": \"loopback tcp, srbd wire "
                 "protocol, open-loop loadgen\",\n"
                 "  \"results\": [\n",
                 kN, kWorkers,
                 static_cast<unsigned long long>(phase_ms));
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const LoadgenReport &r = phases[i].report;
        std::fprintf(
            jf,
            "    {\"phase\": \"%s\", \"offered_rps\": %.0f, "
            "\"achieved_rps\": %.0f, \"serves_per_sec\": %.0f, "
            "\"sent\": %llu, \"ok\": %llu, \"shed\": %llu, "
            "\"over_quota\": %llu, \"deadline_exceeded\": %llu, "
            "\"lost\": %llu, \"protocol_errors\": %llu, "
            "\"payload_mismatches\": %llu, \"p50_ns\": %llu, "
            "\"p99_ns\": %llu, \"clean\": %s}%s\n",
            phases[i].name.c_str(), r.offered_rps, r.achieved_rps,
            r.serves_per_sec,
            static_cast<unsigned long long>(r.sent),
            static_cast<unsigned long long>(r.ok),
            static_cast<unsigned long long>(r.shed),
            static_cast<unsigned long long>(r.over_quota),
            static_cast<unsigned long long>(r.deadline_exceeded),
            static_cast<unsigned long long>(r.lost),
            static_cast<unsigned long long>(r.protocol_errors),
            static_cast<unsigned long long>(r.payload_mismatches),
            static_cast<unsigned long long>(r.p50_ns),
            static_cast<unsigned long long>(r.p99_ns),
            r.clean() ? "true" : "false",
            i + 1 < phases.size() ? "," : "");
    }
    std::fprintf(jf,
                 "  ],\n  \"drain_clean\": %s,\n"
                 "  \"quota_enforced\": %s\n}\n",
                 first_drain_clean && second_drain_clean ? "true"
                                                         : "false",
                 quota_held ? "true" : "false");
    std::fclose(jf);
    std::printf("wrote %s\n", path);

    if (!all_clean)
        std::fprintf(stderr, "SERVICE FAILURE: a phase was not "
                             "clean (lost/mismatch/protocol)\n");
    if (!quota_held)
        std::fprintf(stderr, "QUOTA FAILURE: the quota phase "
                             "refused nothing\n");
    if (!first_drain_clean || !second_drain_clean)
        std::fprintf(stderr, "DRAIN FAILURE: a drain was dirty\n");
    return all_clean && quota_held && first_drain_clean &&
                   second_drain_clean
               ? 0
               : 1;
}
