/**
 * @file
 * Experiments F2/F3 -- Figs. 2 and 3 of the paper: the two states of
 * a binary switch and the self-setting rule "a switch in stage b or
 * stage 2n-2-b takes its state from bit b of its upper input's
 * destination tag". Prints the switch truth table and the
 * control-bit palindrome of each network size.
 *
 * Timed section: state decisions per second through a full fabric.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "core/render.hh"
#include "core/self_routing.hh"
#include "perm/bpc.hh"

namespace
{

using namespace srbenes;

void
printSwitchRule()
{
    std::cout << "=== Fig. 2: binary switch states ===\n"
              << "state 0 (through): upper in -> upper out, "
                 "lower in -> lower out\n"
              << "state 1 (cross):   upper in -> lower out, "
                 "lower in -> upper out\n\n";

    std::cout << "=== Fig. 3: self-setting rule on B(1) ===\n";
    TextTable truth({"upper tag bit b", "state", "behavior"});
    truth.addRow({"0", "0", "through"});
    truth.addRow({"1", "1", "cross"});
    truth.print(std::cout);

    std::cout << "\ncontrol bit per stage (b for stages b and "
                 "2n-2-b):\n";
    TextTable ctrl({"n", "stage control bits"});
    for (unsigned n = 1; n <= 6; ++n) {
        const BenesTopology topo(n);
        std::string bits;
        for (unsigned s = 0; s < topo.numStages(); ++s) {
            if (s)
                bits += " ";
            bits += std::to_string(topo.controlBit(s));
        }
        ctrl.newRow();
        ctrl.addCell(n);
        ctrl.addCell(bits);
    }
    ctrl.print(std::cout);

    // Demonstrate both B(1) settings end to end.
    const SelfRoutingBenes net(1);
    std::cout << "\nB(1) routing (0,1): "
              << (net.route(Permutation({0, 1})).success ? "ok"
                                                         : "FAIL")
              << "; routing (1,0): "
              << (net.route(Permutation({1, 0})).success ? "ok"
                                                         : "FAIL")
              << "\n\n";
}

void
BM_SwitchDecisions(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const SelfRoutingBenes net(n);
    Prng prng(n);
    const Permutation d = BpcSpec::random(n, prng).toPermutation();
    for (auto _ : state) {
        auto res = net.route(d);
        benchmark::DoNotOptimize(res.success);
    }
    // Each route makes one decision per switch.
    state.SetItemsProcessed(state.iterations() *
                            net.topology().numSwitches());
}
BENCHMARK(BM_SwitchDecisions)->Arg(6)->Arg(10)->Arg(14);

} // namespace

int
main(int argc, char **argv)
{
    printSwitchRule();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
