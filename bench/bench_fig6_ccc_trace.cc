/**
 * @file
 * Experiment F6 -- Fig. 6 of the paper: the CCC permutation
 * algorithm tracing the bit-reversal permutation on 8 PEs. Prints
 * the column of destination tags D(i)^k after every iteration of the
 * loop b = 0, 1, 2, 1, 0 -- the same rows the figure shows
 * (including the PE(6)/PE(7) exchange at b = 0 the text calls out).
 *
 * Timed section: full cccPermute at large N.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/table.hh"
#include "core/render.hh"
#include "perm/named_bpc.hh"
#include "simd/permute.hh"

namespace
{

using namespace srbenes;

void
printFigSix()
{
    std::cout << "=== Fig. 6: CCC algorithm, bit reversal, N = 8 "
                 "===\n"
              << "(D(i)^k = destination tag in PE(i) after the k-th "
                 "iteration; loop order b = 0,1,2,1,0)\n\n";

    const unsigned n = 3;
    CubeMachine m(n);
    m.loadIota(named::bitReversal(n).toPermutation());

    const auto schedule = benesSchedule(n);

    std::vector<std::string> headers{"PE", "D(i)"};
    for (std::size_t k = 0; k < schedule.size(); ++k)
        headers.push_back("D(i)^" + std::to_string(k + 1) + " (b=" +
                          std::to_string(schedule[k]) + ")");
    TextTable table(std::move(headers));

    std::vector<std::vector<Word>> columns;
    auto snapshot = [&m, &columns]() {
        std::vector<Word> col(m.numPes());
        for (Word i = 0; i < m.numPes(); ++i)
            col[i] = m.pe(i).d;
        columns.push_back(std::move(col));
    };

    snapshot();
    for (unsigned b : schedule) {
        m.interchange(b, [&m, b](Word i) {
            return bit(m.pe(i).d, b) == 1;
        });
        snapshot();
    }

    for (Word i = 0; i < m.numPes(); ++i) {
        table.newRow();
        table.addCell(i);
        for (const auto &col : columns)
            table.addCell(toBinary(col[i], n));
    }
    table.print(std::cout);

    std::cout << "\nfinal state: "
              << (m.permutationComplete()
                      ? "every D(i) = i, permutation complete"
                      : "INCOMPLETE")
              << "; unit routes = " << m.unitRoutes() << " (2 lg N - 1 = "
              << 2 * n - 1 << ")\n\n";
}

void
BM_CccPermute(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    CubeMachine m(n);
    const Permutation d = named::bitReversal(n).toPermutation();
    for (auto _ : state) {
        m.loadIota(d);
        auto stats = cccPermute(m);
        benchmark::DoNotOptimize(stats.success);
    }
    state.SetItemsProcessed(state.iterations() * m.numPes());
}
BENCHMARK(BM_CccPermute)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

} // namespace

int
main(int argc, char **argv)
{
    printFigSix();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
