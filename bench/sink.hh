/**
 * @file
 * Optimization sink for benchmark loops. `sink(v)` forces the
 * compiler to materialize @p v without the cost (or the SRB002
 * lint finding) of a `volatile` store: the empty asm claims to read
 * the register, so the computation feeding it cannot be dead-code
 * eliminated, and nothing is written to memory.
 */

#ifndef SRBENES_BENCH_SINK_HH
#define SRBENES_BENCH_SINK_HH

namespace srbenes
{
namespace bench
{

template <typename T>
inline void
sink(T v)
{
#if defined(__GNUC__) || defined(__clang__)
    __asm__ __volatile__("" : : "r"(v) : "memory");
#else
    (void)v; // best effort on unknown compilers
#endif
}

} // namespace bench
} // namespace srbenes

#endif // SRBENES_BENCH_SINK_HH
