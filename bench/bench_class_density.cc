/**
 * @file
 * Experiment E3 -- the richness of F(n) (Section II): exact census
 * of F, Omega, InverseOmega and BPC over ALL permutations for
 * n <= 3, sampled densities above that, and the closed-form class
 * cardinalities. The paper's qualitative claims to verify:
 *
 *  - InverseOmega(n) and BPC(n) are strict subsets of F(n);
 *  - Omega(n) is NOT contained in F(n) (Fig. 5);
 *  - all classes vanish relative to N! as n grows (self-routing
 *    trades universality for zero setup).
 *
 * Timed section: the Theorem 1 membership test vs full network
 * simulation.
 */

#include <iomanip>
#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "core/self_routing.hh"
#include "perm/classify.hh"
#include "perm/f_class.hh"
#include "perm/permutation.hh"

namespace
{

using namespace srbenes;

void
printExactCensus()
{
    std::cout << "=== E3: exact class census (exhaustive over all "
                 "N! permutations) ===\n\n";

    TextTable table({"n", "N!", "|F(n)|", "|Omega|", "|InvOmega|",
                     "|BPC|", "2^(n N/2)", "2^n n!"});
    for (unsigned n = 1; n <= 3; ++n) {
        const ClassCensus census = censusExhaustive(n);
        table.newRow();
        table.addCell(n);
        table.addCell(census.total);
        table.addCell(census.in_f);
        table.addCell(census.in_omega);
        table.addCell(census.in_inverse);
        table.addCell(census.in_bpc);
        table.addCell(static_cast<std::uint64_t>(omegaCardinality(n)));
        table.addCell(bpcCardinality(n));
    }
    table.print(std::cout);

    // Beyond brute force: |F(4)| by the transfer-matrix recurrence
    // (validated against the exhaustive counts above), where 16!
    // enumeration is out of reach.
    std::cout << "\nexact |F(4)| via the Theorem-1 recurrence: "
              << std::fixed << std::setprecision(0)
              << static_cast<double>(exactFCardinality(4))
              << "  (16! = 20922789888000; |Omega(4)| = 2^32 = "
                 "4294967296)\n\n";
}

void
printSampledCensus()
{
    std::cout << "=== E3: sampled densities (uniform random "
                 "permutations) ===\n\n";
    TextTable table({"n", "samples", "in F", "in Omega",
                     "in InvOmega", "in BPC"});
    Prng prng(2026);
    for (unsigned n = 4; n <= 7; ++n) {
        const std::uint64_t samples = 2000;
        const ClassCensus census = censusSampled(n, samples, prng);
        table.newRow();
        table.addCell(n);
        table.addCell(samples);
        table.addCell(census.in_f);
        table.addCell(census.in_omega);
        table.addCell(census.in_inverse);
        table.addCell(census.in_bpc);
    }
    table.print(std::cout);
    std::cout << "\n(expected shape: all columns drop to ~0 -- the "
                 "useful classes are vanishing fractions of N!,\n"
                 "which is why characterizing F by its named "
                 "subclasses matters)\n\n";
}

void
BM_TheoremOneMembership(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    Prng prng(n);
    const Permutation d =
        Permutation::random(std::size_t{1} << n, prng);
    for (auto _ : state) {
        bool in_f = inFClass(d);
        benchmark::DoNotOptimize(in_f);
    }
}
BENCHMARK(BM_TheoremOneMembership)->Arg(8)->Arg(12)->Arg(16);

void
BM_FullNetworkMembership(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const SelfRoutingBenes net(n);
    Prng prng(n);
    const Permutation d =
        Permutation::random(std::size_t{1} << n, prng);
    for (auto _ : state) {
        bool in_f = net.route(d).success;
        benchmark::DoNotOptimize(in_f);
    }
}
BENCHMARK(BM_FullNetworkMembership)->Arg(8)->Arg(12)->Arg(16);

} // namespace

int
main(int argc, char **argv)
{
    printExactCensus();
    printSampledCensus();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
