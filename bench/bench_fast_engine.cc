/**
 * @file
 * The bit-sliced flat routing engine against the scalar reference
 * simulator: plan cost and batched end-to-end transport across
 * n = 4..16 and batch sizes 1/8/64, single-threaded, lane-sharded
 * threaded, and through the Router's warm plan cache.
 *
 *   scalar    : SelfRoutingBenes::route per payload vector plus the
 *               realized-destination scatter (the pre-engine
 *               Router::execute behavior);
 *   bitsliced : FastEngine::routePlan once, then one contiguous
 *               gather per payload vector;
 *   threaded  : same plan, lanes sharded across 4 std::thread
 *               workers;
 *   cached    : Router::routeBatch with a warm LRU plan cache (the
 *               paper's SIMD setting — a recurring pattern pays
 *               nothing but the gathers).
 *
 * Emits a fixed-width table on stdout and machine-readable
 * BENCH_fast_engine.json in the working directory so the perf
 * trajectory is tracked from PR to PR.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sink.hh"
#include "common/prng.hh"
#include "common/table.hh"
#include "core/fast_engine.hh"
#include "core/router.hh"
#include "perm/f_class.hh"

namespace
{

using namespace srbenes;

/** Defeat dead-code elimination without perturbing the loop. */

/**
 * Best-of-5 wall time of one invocation of @p f, in nanoseconds,
 * with the iteration count chosen so each sample runs >= ~5 ms.
 */
template <typename F>
double
timeNs(F &&f)
{
    using clock = std::chrono::steady_clock;
    auto once = [&]() {
        const auto t0 = clock::now();
        f();
        return std::chrono::duration<double, std::nano>(clock::now() -
                                                        t0)
            .count();
    };
    const double probe = once();
    const double target = 5e6; // 5 ms per sample
    const unsigned iters =
        probe >= target
            ? 1
            : static_cast<unsigned>(target / (probe + 1.0)) + 1;
    double best = probe;
    for (int sample = 0; sample < 5; ++sample) {
        const auto t0 = clock::now();
        for (unsigned i = 0; i < iters; ++i)
            f();
        const double ns =
            std::chrono::duration<double, std::nano>(clock::now() - t0)
                .count() /
            iters;
        if (ns < best)
            best = ns;
    }
    return best;
}

struct Row
{
    unsigned n;
    Word N;
    std::size_t batch;
    double scalar_ns;
    double bitsliced_ns;
    double threaded_ns;
    double cached_ns;
    double plan_scalar_ns;
    double plan_fast_ns;
};

std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

std::string
fmtX(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fx", v);
    return buf;
}

} // namespace

int
main()
{
    std::printf("=== fast engine: bit-sliced routing vs the scalar "
                "reference ===\n"
                "(workload: random F(n) members, so both paths route "
                "in one self-set pass;\n ns are per batch, best of 5 "
                "samples)\n\n");

    std::vector<Row> rows;
    Prng prng(2026);

    TextTable table({"n", "N", "batch", "scalar ns", "bitsliced ns",
                     "threaded ns", "cached ns", "speedup",
                     "thr speedup", "cached speedup"});

    // SRBENES_BENCH_SMOKE=1: the CI smoke configuration — fewer
    // sizes, so the run proves the binary and its JSON are healthy
    // without tying up a runner.
    const char *smoke_env = std::getenv("SRBENES_BENCH_SMOKE");
    const bool smoke = smoke_env && smoke_env[0] != '\0' &&
                       !(smoke_env[0] == '0' && smoke_env[1] == '\0');
    std::vector<unsigned> sizes{4u, 8u, 10u, 12u, 14u, 16u};
    if (smoke)
        sizes = {4u, 8u, 10u};

    for (unsigned n : sizes) {
        const Word N = Word{1} << n;
        const SelfRoutingBenes net(n);
        const FastEngine engine(n);
        const Router router(n);
        const Permutation d = randomFMember(n, prng);

        std::vector<std::size_t> batches{1, 8, 64};
        if (n >= 16 || smoke)
            batches = {1, 8}; // keep the total runtime bounded

        for (std::size_t B : batches) {
            std::vector<std::vector<Word>> batch(
                B, std::vector<Word>(N));
            for (std::size_t v = 0; v < B; ++v)
                for (Word i = 0; i < N; ++i)
                    batch[v][i] = v * N + i;

            Row row;
            row.n = n;
            row.N = N;
            row.batch = B;

            // Scalar reference: one full fabric simulation per
            // payload vector, then the realized-destination scatter.
            std::vector<Word> out(N);
            row.scalar_ns = timeNs([&]() {
                for (std::size_t v = 0; v < B; ++v) {
                    const RouteResult res = net.route(d);
                    for (Word i = 0; i < N; ++i)
                        out[res.realized_dest[i]] = batch[v][i];
                    bench::sink(out[0]);
                }
            });

            // Bit-sliced: plan once, gather per vector.
            row.bitsliced_ns = timeNs([&]() {
                const auto outs = engine.routeBatch(d, batch);
                bench::sink(outs[0][0]);
            });

            // Same plan, lanes sharded across 4 workers.
            row.threaded_ns = timeNs([&]() {
                const auto outs = engine.routeBatch(
                    d, batch, RoutingMode::SelfRouting, 4);
                bench::sink(outs[0][0]);
            });

            // Warm plan cache: classification and planning skipped.
            (void)router.routeBatch(d, batch);
            row.cached_ns = timeNs([&]() {
                const auto outs = router.routeBatch(d, batch);
                bench::sink(outs[0][0]);
            });

            // Plan-only comparison (batch independent; measured per
            // batch row anyway to keep the JSON flat).
            row.plan_scalar_ns = timeNs([&]() {
                const RouteResult res = net.route(d);
                bench::sink(res.realized_dest[0]);
            });
            row.plan_fast_ns = timeNs([&]() {
                const FastPlan plan = engine.routePlan(d);
                bench::sink(plan.src[0]);
            });

            rows.push_back(row);
            table.newRow();
            table.addCell(n);
            table.addCell(N);
            table.addCell(B);
            table.addCell(fmt(row.scalar_ns));
            table.addCell(fmt(row.bitsliced_ns));
            table.addCell(fmt(row.threaded_ns));
            table.addCell(fmt(row.cached_ns));
            table.addCell(fmtX(row.scalar_ns / row.bitsliced_ns));
            table.addCell(fmtX(row.scalar_ns / row.threaded_ns));
            table.addCell(fmtX(row.scalar_ns / row.cached_ns));
        }
    }

    table.print(std::cout);

    std::printf("\nplan-only (one route, no payloads):\n");
    TextTable plans({"n", "N", "scalar route ns", "fast plan ns",
                     "speedup"});
    for (const Row &row : rows) {
        if (row.batch != 1)
            continue;
        plans.newRow();
        plans.addCell(row.n);
        plans.addCell(row.N);
        plans.addCell(fmt(row.plan_scalar_ns));
        plans.addCell(fmt(row.plan_fast_ns));
        plans.addCell(fmtX(row.plan_scalar_ns / row.plan_fast_ns));
    }
    plans.print(std::cout);

    const char *path = "BENCH_fast_engine.json";
    std::FILE *jf = std::fopen(path, "w");
    if (!jf) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    std::fprintf(jf, "{\n  \"benchmark\": \"fast_engine\",\n"
                     "  \"unit\": \"ns_per_batch\",\n"
                     "  \"workload\": \"random F(n) member, "
                     "self-routed\",\n  \"results\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            jf,
            "    {\"n\": %u, \"N\": %llu, \"batch\": %zu, "
            "\"scalar_ns\": %.0f, \"bitsliced_ns\": %.0f, "
            "\"threaded_ns\": %.0f, \"cached_ns\": %.0f, "
            "\"plan_scalar_ns\": %.0f, \"plan_fast_ns\": %.0f, "
            "\"speedup_bitsliced\": %.2f, \"speedup_threaded\": %.2f, "
            "\"speedup_cached\": %.2f}%s\n",
            r.n, static_cast<unsigned long long>(r.N), r.batch,
            r.scalar_ns, r.bitsliced_ns, r.threaded_ns, r.cached_ns,
            r.plan_scalar_ns, r.plan_fast_ns,
            r.scalar_ns / r.bitsliced_ns, r.scalar_ns / r.threaded_ns,
            r.scalar_ns / r.cached_ns,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(jf, "  ]\n}\n");
    std::fclose(jf);
    std::printf("\nwrote %s\n", path);
    return 0;
}
