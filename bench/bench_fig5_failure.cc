/**
 * @file
 * Experiment F5 -- Fig. 5 of the paper: D = (1, 3, 2, 0) cannot be
 * performed on B(2) by the self-routing scheme. Prints the misrouted
 * trace, then shows the two rescues the paper describes: the omega
 * bit (D is in Omega(2)) and external Waksman setup.
 *
 * Timed section: failure detection cost (routing a non-F
 * permutation is exactly as fast as routing a member).
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "core/render.hh"
#include "core/self_routing.hh"
#include "core/waksman.hh"
#include "perm/omega_class.hh"

namespace
{

using namespace srbenes;

void
printFigFive()
{
    std::cout << "=== Fig. 5: D = (1,3,2,0) fails on B(2) ===\n\n";

    const SelfRoutingBenes net(2);
    const Permutation d{1, 3, 2, 0};

    RouteTrace trace;
    const auto res =
        net.route(d, RoutingMode::SelfRouting, &trace);
    std::cout << renderRoute(net.topology(), trace, res) << "\n";

    std::cout << "class membership: omega = "
              << (isOmega(d) ? "yes" : "no")
              << ", inverse omega = "
              << (isInverseOmega(d) ? "yes" : "no") << "\n\n";

    std::cout << "rescue 1 (omega bit, stages 0..n-2 forced "
                 "straight): "
              << (net.route(d, RoutingMode::OmegaBit).success
                      ? "routes"
                      : "still fails")
              << "\n";

    const auto states = waksmanSetup(net.topology(), d);
    std::cout << "rescue 2 (external Waksman setup): "
              << (net.routeWithStates(d, states).success
                      ? "routes"
                      : "still fails")
              << "\n\n";
}

void
BM_NonMemberDetection(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const SelfRoutingBenes net(n);
    Prng prng(n);
    // Random permutations of this size are essentially never in F.
    const Permutation d =
        Permutation::random(std::size_t{1} << n, prng);
    for (auto _ : state) {
        auto res = net.route(d);
        benchmark::DoNotOptimize(res.success);
    }
}
BENCHMARK(BM_NonMemberDetection)->Arg(6)->Arg(10)->Arg(14);

} // namespace

int
main(int argc, char **argv)
{
    printFigFive();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
