/**
 * @file
 * Experiment E17 (extension) -- packet-switched operation of the
 * same fabric: per-packet tag routing with input FIFOs and
 * backpressure delivers ALL N! permutations (no setup, no class
 * restriction), at the price of contention. The comparison against
 * the paper's circuit discipline:
 *
 *  - circuit mode: F members in exactly 2n-1 stage delays, non-F
 *    impossible (single pass);
 *  - packet mode: everything delivers, but even F members stall
 *    (bit reversal collides at stage 0), and tails stretch with
 *    load.
 *
 * Timed section: packet simulation throughput.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "packet/packet_benes.hh"
#include "perm/f_class.hh"
#include "perm/linear.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace
{

using namespace srbenes;

void
printPacketStudy()
{
    const unsigned n = 6;
    const Word size = Word{1} << n;
    std::cout << "=== E17: packet mode vs circuit mode (B(6), "
                 "N = 64, FIFO depth 2) ===\n"
              << "(circuit-mode delay for comparison: 2n-1 = "
              << 2 * n - 1 << " stage delays, F members only)\n\n";

    Prng prng(17);
    struct Row
    {
        std::string name;
        Permutation perm;
    };
    const std::vector<Row> rows{
        {"identity", Permutation::identity(size)},
        {"cyclic shift +1", named::cyclicShift(n, 1)},
        {"bit reversal (in F)",
         named::bitReversal(n).toPermutation()},
        {"matrix transpose (in F)",
         named::matrixTranspose(n).toPermutation()},
        {"gray code (in F)",
         LinearSpec::grayCode(n).toPermutation()},
        {"random F member", randomFMember(n, prng)},
        {"uniform random (not in F)",
         Permutation::random(size, prng)},
        {"worst-case funnel",
         named::perfectShuffle(n).toPermutation()},
    };

    TextTable table({"workload", "avg latency", "max latency",
                     "stalls", "vs circuit"});
    PacketBenes fabric(n);
    for (const auto &row : rows) {
        const auto stats = fabric.runPermutation(row.perm);
        table.newRow();
        table.addCell(row.name);
        table.addCell(stats.avg_latency, 2);
        table.addCell(stats.max_latency);
        table.addCell(stats.stalls);
        table.addCell(static_cast<double>(stats.max_latency) /
                          (2 * n - 1),
                      2);
    }
    table.print(std::cout);

    // Streaming saturation.
    std::cout << "\nstreaming load (batches of random "
                 "permutations, one injected per cycle):\n";
    TextTable stream_tbl({"batches", "cycles", "cycles/batch",
                          "avg latency", "max occupancy"});
    for (int batches : {1, 4, 16, 64}) {
        std::vector<Permutation> stream;
        for (int b = 0; b < batches; ++b)
            stream.push_back(Permutation::random(size, prng));
        const auto stats = fabric.runStream(stream);
        stream_tbl.newRow();
        stream_tbl.addCell(batches);
        stream_tbl.addCell(stats.cycles);
        stream_tbl.addCell(
            static_cast<double>(stats.cycles) / batches, 2);
        stream_tbl.addCell(stats.avg_latency, 2);
        stream_tbl.addCell(stats.max_occupancy);
    }
    stream_tbl.print(std::cout);
    std::cout << "\n(the paper's circuit discipline wins whenever "
                 "the workload lives in F: zero stalls and a "
                 "deterministic\n2n-1 delay; packet mode buys "
                 "universality with contention tails)\n\n";
}

void
BM_PacketPermutation(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    PacketBenes fabric(n);
    Prng prng(n);
    const auto d = Permutation::random(std::size_t{1} << n, prng);
    for (auto _ : state) {
        auto stats = fabric.runPermutation(d);
        benchmark::DoNotOptimize(stats.cycles);
    }
    state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_PacketPermutation)->Arg(6)->Arg(8)->Arg(10);

} // namespace

int
main(int argc, char **argv)
{
    printPacketStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
