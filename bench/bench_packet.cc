/**
 * @file
 * Packet-mode capacity: sustained throughput and loss vs offered
 * load for every traffic matrix in the library, under both
 * contention policies.
 *
 * Each row drives a fresh packet::Fabric (least-occupancy midpath)
 * from one TrafficSource at a target offered load for a fixed
 * injection window, then drains. Measured quantities come from the
 * fabric's conservation-grade accounting:
 *
 *  - throughput: delivered packets per simulated cycle (and the
 *    wall-clock simulation rate in packets/sec);
 *  - loss: in-fabric drops / injected (Drop policy), plus the
 *    ingress rejection fraction, which is where Backpressure sheds
 *    overload instead;
 *  - delay: exact avg/max latency in cycles.
 *
 * The bench doubles as an acceptance gate and exits nonzero when
 *  - any row breaks conservation (offered != injected + rejected or
 *    injected != delivered + dropped + in-flight after drain), or
 *  - the uniform matrix drops or rejects packets at or below load
 *    0.3 under the Drop policy: uniform traffic this far below
 *    saturation must fit in the default rings, so a loss there is a
 *    routing or queueing regression, not congestion.
 *
 * Emits a fixed-width table per policy and machine-readable
 * BENCH_packet.json. SRBENES_BENCH_SMOKE=1 shrinks the sweep for
 * CI (smaller n, fewer cycles, coarser load grid).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hh"
#include "packet/fabric.hh"
#include "packet/traffic.hh"

namespace
{

using namespace srbenes;

/** Loads at or below this must be loss-free for uniform + Drop. */
constexpr double kLosslessLoad = 0.3;
/** BurstyTraffic caps at B / (B + 1) with B = 8; clamp the grid. */
constexpr double kBurstyMaxLoad = 0.85;

struct Row
{
    std::string matrix;
    packet::ContentionPolicy policy;
    double actual_load = 0; //!< what the generator was built with
    double measured_load = 0;
    std::uint64_t inject_cycles = 0;
    packet::FabricStats st;
    double pkts_per_cycle = 0;
    double pkts_per_sec = 0; //!< wall-clock simulation rate
    double drop_frac = 0;
    double reject_frac = 0;
};

std::unique_ptr<packet::TrafficSource>
makeMatrix(const std::string &name, unsigned n, double load,
           std::uint64_t seed)
{
    if (name == "uniform")
        return std::make_unique<packet::UniformTraffic>(n, load,
                                                        seed);
    if (name == "hotspot")
        return std::make_unique<packet::HotSpotTraffic>(
            n, load, 0.25, 0, seed);
    if (name == "bursty")
        return std::make_unique<packet::BurstyTraffic>(n, load, 8.0,
                                                       seed);
    if (name == "partial")
        return std::make_unique<packet::PartialTraffic>(n, load, 0.5,
                                                        seed);
    if (name == "multicast")
        return std::make_unique<packet::MulticastTraffic>(n, load, 4,
                                                          seed);
    std::fprintf(stderr, "unknown matrix %s\n", name.c_str());
    std::exit(1);
}

Row
run(const std::string &matrix, packet::ContentionPolicy policy,
    unsigned n, double target_load, std::uint64_t inject_cycles)
{
    Row row;
    row.matrix = matrix;
    row.policy = policy;
    row.actual_load = matrix == "bursty"
                          ? std::min(target_load, kBurstyMaxLoad)
                          : target_load;
    row.inject_cycles = inject_cycles;

    packet::PacketOptions opts;
    opts.contention = policy;
    packet::Fabric fabric(n, opts, nullptr);
    auto source = makeMatrix(matrix, n, row.actual_load, 1905);

    const auto t0 = std::chrono::steady_clock::now();
    row.st = fabric.run(*source, inject_cycles);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration<double>(t1 - t0).count();

    const double ports = static_cast<double>(Word{1} << n);
    row.measured_load =
        static_cast<double>(row.st.offered) /
        (static_cast<double>(inject_cycles) * ports);
    row.pkts_per_cycle = static_cast<double>(row.st.delivered) /
                         static_cast<double>(row.st.cycles);
    row.pkts_per_sec =
        sec > 0 ? static_cast<double>(row.st.delivered) / sec : 0;
    if (row.st.injected > 0)
        row.drop_frac = static_cast<double>(row.st.dropped) /
                        static_cast<double>(row.st.injected);
    if (row.st.offered > 0)
        row.reject_frac = static_cast<double>(row.st.rejected) /
                          static_cast<double>(row.st.offered);
    return row;
}

std::string
fmt(double v, const char *spec)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), spec, v);
    return buf;
}

} // namespace

int
main()
{
    // SRBENES_BENCH_SMOKE=1: the CI smoke configuration — the same
    // sweep shape at a fraction of the cycle count.
    const char *smoke_env = std::getenv("SRBENES_BENCH_SMOKE");
    const bool smoke = smoke_env && smoke_env[0] != '\0' &&
                       !(smoke_env[0] == '0' && smoke_env[1] == '\0');

    const unsigned n = smoke ? 6 : 8;
    const std::uint64_t cycles = smoke ? 400 : 4000;
    const std::vector<double> loads =
        smoke ? std::vector<double>{0.2, 0.3, 0.6, 0.9}
              : std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5,
                                    0.6, 0.7, 0.8, 0.9, 0.95};
    const std::vector<std::string> matrices{
        "uniform", "hotspot", "bursty", "partial", "multicast"};
    const packet::ContentionPolicy policies[] = {
        packet::ContentionPolicy::Backpressure,
        packet::ContentionPolicy::Drop,
    };

    std::cout << "=== packet fabric: throughput and loss vs "
                 "offered load (n = "
              << n << ", " << cycles << " inject cycles, "
              << midpathPolicyName(packet::PacketOptions{}.midpath)
              << " midpath) ===\n";

    std::vector<Row> rows;
    bool ok = true;
    std::string gate_msg;
    for (const packet::ContentionPolicy policy : policies) {
        std::cout << "\n--- " << contentionPolicyName(policy)
                  << " ---\n";
        TextTable table({"matrix", "load", "measured", "pkts/cyc",
                         "sim pkts/s", "drop%", "reject%",
                         "avg lat", "max lat", "stalls"});
        for (const std::string &matrix : matrices)
            for (const double load : loads) {
                Row row = run(matrix, policy, n, load, cycles);
                table.newRow();
                table.addCell(row.matrix);
                table.addCell(fmt(row.actual_load, "%.2f"));
                table.addCell(fmt(row.measured_load, "%.3f"));
                table.addCell(fmt(row.pkts_per_cycle, "%.1f"));
                table.addCell(fmt(row.pkts_per_sec, "%.2e"));
                table.addCell(fmt(100 * row.drop_frac, "%.2f"));
                table.addCell(fmt(100 * row.reject_frac, "%.2f"));
                table.addCell(fmt(row.st.avg_latency, "%.1f"));
                table.addCell(row.st.max_latency);
                table.addCell(row.st.stalls);

                if (!row.st.conserved) {
                    ok = false;
                    gate_msg += "conservation broken: " +
                                row.matrix + " @ " +
                                fmt(row.actual_load, "%.2f") + " " +
                                contentionPolicyName(policy) + "\n";
                }
                if (row.matrix == "uniform" &&
                    policy == packet::ContentionPolicy::Drop &&
                    row.actual_load <= kLosslessLoad + 1e-9 &&
                    (row.st.dropped > 0 || row.st.rejected > 0)) {
                    ok = false;
                    gate_msg +=
                        "uniform load " +
                        fmt(row.actual_load, "%.2f") +
                        " lost packets below saturation (dropped " +
                        std::to_string(row.st.dropped) +
                        ", rejected " +
                        std::to_string(row.st.rejected) + ")\n";
                }
                rows.push_back(row);
            }
        table.print(std::cout);
    }

    const char *path = "BENCH_packet.json";
    std::FILE *jf = std::fopen(path, "w");
    if (!jf) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    std::fprintf(jf,
                 "{\n  \"benchmark\": \"packet\",\n"
                 "  \"unit\": \"pkts_per_cycle\",\n"
                 "  \"workload\": \"traffic matrices at controlled "
                 "offered load, least-occupancy midpath\",\n"
                 "  \"n\": %u,\n  \"inject_cycles\": %llu,\n"
                 "  \"queue_capacity\": %zu,\n"
                 "  \"ingress_capacity\": %zu,\n"
                 "  \"lossless_gate_load\": %.2f,\n"
                 "  \"results\": [\n",
                 n, static_cast<unsigned long long>(cycles),
                 packet::PacketOptions{}.queue_capacity,
                 packet::PacketOptions{}.ingress_capacity,
                 kLosslessLoad);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            jf,
            "    {\"matrix\": \"%s\", \"policy\": \"%s\", "
            "\"offered_load\": %.3f, \"measured_load\": %.4f, "
            "\"offered\": %llu, \"injected\": %llu, "
            "\"rejected\": %llu, \"delivered\": %llu, "
            "\"dropped\": %llu, \"stalls\": %llu, "
            "\"cycles\": %llu, "
            "\"pkts_per_cycle\": %.2f, \"pkts_per_sec\": %.0f, "
            "\"drop_frac\": %.5f, \"reject_frac\": %.5f, "
            "\"avg_latency\": %.2f, \"max_latency\": %llu, "
            "\"max_occupancy\": %llu, \"conserved\": %s}%s\n",
            r.matrix.c_str(), contentionPolicyName(r.policy),
            r.actual_load, r.measured_load,
            static_cast<unsigned long long>(r.st.offered),
            static_cast<unsigned long long>(r.st.injected),
            static_cast<unsigned long long>(r.st.rejected),
            static_cast<unsigned long long>(r.st.delivered),
            static_cast<unsigned long long>(r.st.dropped),
            static_cast<unsigned long long>(r.st.stalls),
            static_cast<unsigned long long>(r.st.cycles),
            r.pkts_per_cycle, r.pkts_per_sec, r.drop_frac,
            r.reject_frac, r.st.avg_latency,
            static_cast<unsigned long long>(r.st.max_latency),
            static_cast<unsigned long long>(r.st.max_occupancy),
            r.st.conserved ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(jf, "  ]\n}\n");
    std::fclose(jf);
    std::printf("\nwrote %s\n", path);
    if (!ok)
        std::fprintf(stderr, "\nACCEPTANCE GATE FAILED:\n%s",
                     gate_msg.c_str());
    return ok ? 0 : 1;
}
