/**
 * @file
 * Experiment E15 (extension) -- partial-permutation routability:
 * with the extended idle-aware switch rule, what fraction of random
 * k-active mappings self-route as a function of occupancy k/N? The
 * endpoints are proven in the tests (k <= 2 always routes; k = N
 * reduces to membership in F); this bench traces the curve between
 * them and compares restricted F members against uniform partial
 * mappings.
 *
 * Timed section: partial-route throughput.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "core/partial.hh"
#include "perm/f_class.hh"

namespace
{

using namespace srbenes;

void
printOccupancyCurve()
{
    std::cout << "=== E15: partial-permutation routability vs "
                 "occupancy (B(6), N = 64) ===\n\n";

    const unsigned n = 6;
    const SelfRoutingBenes net(n);
    const Word size = Word{1} << n;
    Prng prng(15);

    TextTable table({"active k", "k/N", "uniform routed %",
                     "restricted-F routed %"});
    const int samples = 400;
    for (std::size_t k : {1u, 2u, 4u, 8u, 16u, 24u, 32u, 48u, 56u,
                          60u, 64u}) {
        int uniform_ok = 0, restricted_ok = 0;
        for (int s = 0; s < samples; ++s) {
            uniform_ok +=
                routePartial(net,
                             PartialMapping::random(size, k, prng))
                    .success;

            // Restriction of a known member to k random inputs.
            const Permutation member = randomFMember(n, prng);
            std::vector<Word> order(size);
            for (Word i = 0; i < size; ++i)
                order[i] = i;
            for (Word i = size; i > 1; --i)
                std::swap(order[i - 1], order[prng.below(i)]);
            std::vector<bool> mask(size, false);
            for (std::size_t t = 0; t < k; ++t)
                mask[order[t]] = true;
            restricted_ok +=
                routePartial(net,
                             PartialMapping::restrict(member, mask))
                    .success;
        }
        table.newRow();
        table.addCell(static_cast<std::uint64_t>(k));
        table.addCell(static_cast<double>(k) / size, 3);
        table.addCell(100.0 * uniform_ok / samples, 1);
        table.addCell(100.0 * restricted_ok / samples, 1);
    }
    table.print(std::cout);
    std::cout << "\n(measured shape: certainty at k <= 2, then "
                 "rapid decay -- and, notably, restricting a known "
                 "F member is\nNO better than a uniform mapping at "
                 "intermediate occupancy: idle holes change the "
                 "upstream switch\ndecisions, so membership is "
                 "destroyed until the mapping is complete again at "
                 "k = N, where the\nrestricted column snaps back to "
                 "100%)\n\n";
}

void
BM_PartialRoute(benchmark::State &state)
{
    const unsigned n = 10;
    const SelfRoutingBenes net(n);
    Prng prng(n);
    const auto mapping =
        PartialMapping::random(Word{1} << n, 1u << (n - 1), prng);
    for (auto _ : state) {
        auto res = routePartial(net, mapping);
        benchmark::DoNotOptimize(res.success);
    }
}
BENCHMARK(BM_PartialRoute);

} // namespace

int
main(int argc, char **argv)
{
    printOccupancyCurve();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
