/**
 * @file
 * Experiment E8 (extension) -- two-pass universal self-routing: any
 * of the N! permutations as an InverseOmega pass followed by an
 * Omega pass (both self-routed; the second with the omega bit).
 * Compares the three universal-routing strategies on the same
 * fabric:
 *
 *   waksman   : O(N log N) setup, ONE pass, switch states loaded
 *               externally;
 *   two-pass  : O(N log N) planning, TWO self-routed passes, only
 *               destination tags ever reach the fabric;
 *   batcher   : zero planning, one pass through a different fabric
 *               with log^2 N stages.
 *
 * Timed sections: plan/setup and execution across n.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "core/two_pass.hh"
#include "core/waksman.hh"
#include "networks/batcher.hh"
#include "perm/omega_class.hh"

namespace
{

using namespace srbenes;

void
printTwoPass()
{
    std::cout << "=== E8: universal routing strategies on one "
                 "fabric ===\n\n";

    TextTable table({"n", "N", "P1 in InvOmega", "P2 in Omega",
                     "both passes route", "fabric stage-delays",
                     "state words shipped"});
    Prng prng(11);
    for (unsigned n : {3u, 5u, 8u, 10u, 12u}) {
        const SelfRoutingBenes net(n);
        const auto d =
            Permutation::random(std::size_t{1} << n, prng);
        const TwoPassPlan plan = twoPassPlan(net, d);

        const bool pass1 = net.route(plan.first).success;
        const bool pass2 =
            net.route(plan.second, RoutingMode::OmegaBit).success;

        table.newRow();
        table.addCell(n);
        table.addCell(Word{1} << n);
        table.addCell(isInverseOmega(plan.first) ? "yes" : "NO");
        table.addCell(isOmega(plan.second) ? "yes" : "NO");
        table.addCell(pass1 && pass2 ? "yes" : "NO");
        table.addCell(2 * (2 * n - 1));
        // Two-pass ships 2N tag words; Waksman ships (2n-1)N/2
        // switch bits plus N tags.
        table.addCell(std::uint64_t{2} * (Word{1} << n));
    }
    table.print(std::cout);
    std::cout << "\n(single-pass Waksman ships (2n-1)N/2 switch "
                 "states instead and needs the self-setting logic "
                 "disabled)\n\n";
}

void
BM_TwoPassPlanning(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const SelfRoutingBenes net(n);
    Prng prng(n);
    const auto d = Permutation::random(std::size_t{1} << n, prng);
    for (auto _ : state) {
        auto plan = twoPassPlan(net, d);
        benchmark::DoNotOptimize(plan.first.dest().data());
    }
    state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_TwoPassPlanning)->Arg(8)->Arg(12)->Arg(16);

void
BM_WaksmanPlanning(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const BenesTopology topo(n);
    Prng prng(n);
    const auto d = Permutation::random(std::size_t{1} << n, prng);
    for (auto _ : state) {
        auto states = waksmanSetup(topo, d);
        benchmark::DoNotOptimize(states.size());
    }
    state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_WaksmanPlanning)->Arg(8)->Arg(12)->Arg(16);

void
BM_TwoPassExecution(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const SelfRoutingBenes net(n);
    Prng prng(n);
    const auto d = Permutation::random(std::size_t{1} << n, prng);
    const TwoPassPlan plan = twoPassPlan(net, d);
    std::vector<Word> data(d.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = i;
    for (auto _ : state) {
        auto out = twoPassPermute(net, plan, data);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_TwoPassExecution)->Arg(8)->Arg(12)->Arg(16);

void
BM_BatcherExecution(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const BatcherNetwork net(n);
    Prng prng(n);
    const auto d = Permutation::random(std::size_t{1} << n, prng);
    for (auto _ : state) {
        bool ok = net.tryRoute(d);
        benchmark::DoNotOptimize(ok);
    }
    state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_BatcherExecution)->Arg(8)->Arg(12)->Arg(16);

} // namespace

int
main(int argc, char **argv)
{
    printTwoPass();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
