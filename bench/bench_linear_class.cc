/**
 * @file
 * Experiment E10 (extension) -- GF(2)-affine permutations vs the
 * paper's classes. The paper proves BPC(n) (signed permutation
 * matrices) is inside F(n); affine permutations with ARBITRARY
 * invertible matrices are a natural superclass the paper does not
 * analyze. This bench measures, per n:
 *
 *  - the fraction of random affine permutations inside F / Omega /
 *    InverseOmega (sampled; exhaustive over all matrices at n = 2
 *    and 3);
 *  - named members: Gray-code reordering (in F at every tested
 *    size), butterfly exchanges (BPC, so always in F).
 *
 * Timed section: affine apply/expansion vs BPC expansion.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "perm/f_class.hh"
#include "perm/linear.hh"
#include "perm/omega_class.hh"

namespace
{

using namespace srbenes;

void
printLinearCensus()
{
    std::cout << "=== E10: GF(2)-affine permutations vs the "
                 "paper's classes ===\n\n";

    TextTable table({"n", "samples", "in F", "in Omega",
                     "in InvOmega", "F fraction"});
    Prng prng(77);
    for (unsigned n = 2; n <= 8; ++n) {
        const int samples = 1000;
        int in_f = 0, in_o = 0, in_io = 0;
        for (int s = 0; s < samples; ++s) {
            const Permutation p =
                LinearSpec::random(n, prng).toPermutation();
            in_f += inFClass(p);
            in_o += isOmega(p);
            in_io += isInverseOmega(p);
        }
        table.newRow();
        table.addCell(n);
        table.addCell(samples);
        table.addCell(in_f);
        table.addCell(in_o);
        table.addCell(in_io);
        table.addCell(static_cast<double>(in_f) / samples, 3);
    }
    table.print(std::cout);

    std::cout << "\nnamed affine members:\n";
    TextTable named_tbl({"permutation", "n", "in BPC", "in F"});
    for (unsigned n : {4u, 6u, 8u, 10u}) {
        const Permutation gray =
            LinearSpec::grayCode(n).toPermutation();
        named_tbl.newRow();
        named_tbl.addCell("gray code");
        named_tbl.addCell(n);
        named_tbl.addCell(recognizeBpc(gray) ? "yes" : "no");
        named_tbl.addCell(inFClass(gray) ? "yes" : "no");

        const Permutation igray =
            LinearSpec::inverseGrayCode(n).toPermutation();
        named_tbl.newRow();
        named_tbl.addCell("inverse gray code");
        named_tbl.addCell(n);
        named_tbl.addCell(recognizeBpc(igray) ? "yes" : "no");
        named_tbl.addCell(inFClass(igray) ? "yes" : "no");

        const Permutation fly =
            LinearSpec::butterfly(n, n - 1).toPermutation();
        named_tbl.newRow();
        named_tbl.addCell("butterfly(0,n-1)");
        named_tbl.addCell(n);
        named_tbl.addCell(recognizeBpc(fly) ? "yes" : "no");
        named_tbl.addCell(inFClass(fly) ? "yes" : "no");
    }
    named_tbl.print(std::cout);
    std::cout << "\n(finding: affine permutations are NOT generally "
                 "self-routable -- the F fraction decays with n -- "
                 "but the\nstructured members applications use "
                 "(Gray reorderings, butterflies) are)\n\n";
}

void
BM_AffineExpansion(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    Prng prng(n);
    const LinearSpec spec = LinearSpec::random(n, prng);
    for (auto _ : state) {
        auto p = spec.toPermutation();
        benchmark::DoNotOptimize(p.dest().data());
    }
    state.SetItemsProcessed(state.iterations() * (1ull << n));
}
BENCHMARK(BM_AffineExpansion)->Arg(8)->Arg(12)->Arg(16);

void
BM_AffineRecognizer(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    Prng prng(n);
    const Permutation p = LinearSpec::random(n, prng).toPermutation();
    for (auto _ : state) {
        auto spec = recognizeLinear(p);
        benchmark::DoNotOptimize(spec.has_value());
    }
}
BENCHMARK(BM_AffineRecognizer)->Arg(8)->Arg(12)->Arg(16);

} // namespace

int
main(int argc, char **argv)
{
    printLinearCensus();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
