/**
 * @file
 * Experiment E18 (extension) -- single-fabric multicast: give every
 * switch two broadcast states and ask one Benes pass to carry
 * arbitrary fanout mappings. Measures the feasible fraction of
 * uniform random mappings per N (exact backtracking setup), which
 * quantifies why generalized connection networks spend a second
 * fabric: one broadcast-Benes pass covers everything at N = 4 and
 * a decreasing fraction as N grows.
 *
 * Timed section: backtracking setup cost.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "networks/gcn.hh"
#include "networks/multicast.hh"

namespace
{

using namespace srbenes;

void
printMulticast()
{
    std::cout << "=== E18: single-pass multicast on a "
                 "broadcast-Benes fabric ===\n\n";

    TextTable table({"n", "N", "samples", "single-pass feasible",
                     "feasible %", "GCN (always)"});
    Prng prng(18);
    for (unsigned n : {2u, 3u, 4u, 5u}) {
        const MulticastBenes fabric(n);
        const Word size = Word{1} << n;
        const int samples = n <= 3 ? 2000 : 400;
        int feasible = 0;
        for (int s = 0; s < samples; ++s) {
            std::vector<Word> src(size);
            for (Word j = 0; j < size; ++j)
                src[j] = prng.below(size);
            feasible += fabric.setupMapping(src).has_value();
        }
        table.newRow();
        table.addCell(n);
        table.addCell(size);
        table.addCell(samples);
        table.addCell(feasible);
        table.addCell(100.0 * feasible / samples, 1);
        table.addCell("100%");
    }
    table.print(std::cout);

    // Fanout sensitivity at N = 16: restrict the number of distinct
    // sources.
    std::cout << "\nfanout sensitivity (N = 16, random mappings "
                 "drawing from k hot inputs):\n";
    TextTable hot_tbl({"hot inputs k", "samples",
                       "single-pass feasible %"});
    const MulticastBenes fabric(4);
    for (Word k : {Word{1}, Word{2}, Word{4}, Word{8}, Word{16}}) {
        const int samples = 300;
        int feasible = 0;
        for (int s = 0; s < samples; ++s) {
            std::vector<Word> src(16);
            for (Word j = 0; j < 16; ++j)
                src[j] = prng.below(k); // sources 0..k-1
            feasible += fabric.setupMapping(src).has_value();
        }
        hot_tbl.newRow();
        hot_tbl.addCell(k);
        hot_tbl.addCell(samples);
        hot_tbl.addCell(100.0 * feasible / samples, 1);
    }
    hot_tbl.print(std::cout);
    std::cout << "\n(the GCN sandwich pays 2x the fabric plus copy "
                 "stages and never fails; one broadcast fabric is "
                 "cheap\nbut incomplete -- the measured gap is the "
                 "price of the missing copy network)\n\n";
}

void
BM_MulticastSetup(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const MulticastBenes fabric(n);
    Prng prng(n);
    std::vector<Word> src(Word{1} << n);
    for (Word j = 0; j < src.size(); ++j)
        src[j] = prng.below(Word{1} << n);
    for (auto _ : state) {
        auto states = fabric.setupMapping(src);
        benchmark::DoNotOptimize(states.has_value());
    }
}
BENCHMARK(BM_MulticastSetup)->Arg(3)->Arg(4)->Arg(5);

} // namespace

int
main(int argc, char **argv)
{
    printMulticast();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
