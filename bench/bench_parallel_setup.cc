/**
 * @file
 * Experiment E13 (extension) -- the setup-time landscape the paper
 * positions itself against (Section I): serial Waksman O(N log N)
 * work vs the data-parallel CIC coloring's O(log^2 N) steps vs the
 * self-routing network's zero setup. The measured step counts make
 * the paper's argument concrete: even with an aggressive parallel
 * setup machine, externally-set routing pays polylog steps per
 * permutation where self-routing pays none.
 *
 * Timed section: wall clock of both setup algorithms (simulated).
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "core/parallel_setup.hh"
#include "core/waksman.hh"

namespace
{

using namespace srbenes;

void
printParallelSetup()
{
    std::cout << "=== E13: serial vs parallel setup cost ===\n\n";

    TextTable table({"n", "N", "serial work (touches)",
                     "CIC unit routes", "CIC local steps",
                     "CIC total steps", "n^2 reference"});
    Prng prng(13);
    for (unsigned n = 2; n <= 14; n += 2) {
        const BenesTopology topo(n);
        const auto d = Permutation::random(std::size_t{1} << n, prng);
        ParallelSetupStats stats;
        parallelSetup(topo, d, &stats);

        table.newRow();
        table.addCell(n);
        table.addCell(Word{1} << n);
        // Serial looping touches every input once per level.
        table.addCell(static_cast<std::uint64_t>(n) *
                      (Word{1} << n));
        table.addCell(stats.unit_routes);
        table.addCell(stats.compute_steps);
        table.addCell(stats.total());
        table.addCell(static_cast<std::uint64_t>(n) * n);
    }
    table.print(std::cout);
    std::cout << "\n(expected shape: CIC total steps track the n^2 "
                 "column -- polylog in N -- while serial work "
                 "tracks N log N;\nself-routing needs neither)\n\n";
}

void
BM_SerialSetup(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const BenesTopology topo(n);
    Prng prng(n);
    const auto d = Permutation::random(std::size_t{1} << n, prng);
    for (auto _ : state) {
        auto states = waksmanSetup(topo, d);
        benchmark::DoNotOptimize(states.size());
    }
}
BENCHMARK(BM_SerialSetup)->Arg(8)->Arg(12)->Arg(16);

void
BM_ParallelSetupSimulated(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const BenesTopology topo(n);
    Prng prng(n);
    const auto d = Permutation::random(std::size_t{1} << n, prng);
    for (auto _ : state) {
        auto states = parallelSetup(topo, d);
        benchmark::DoNotOptimize(states.size());
    }
}
BENCHMARK(BM_ParallelSetupSimulated)->Arg(8)->Arg(12)->Arg(16);

} // namespace

int
main(int argc, char **argv)
{
    printParallelSetup();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
