/**
 * @file
 * Experiment T1 -- Table I of the paper: the A-vectors of the
 * example BPC permutations, their expansions, and proof by routing
 * that each is realized by the self-routing network (Theorem 2).
 *
 * Timed section: expanding and self-routing each Table I permutation
 * at N = 1024.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/table.hh"
#include "core/self_routing.hh"
#include "perm/named_bpc.hh"

namespace
{

using namespace srbenes;

void
printTableOne()
{
    std::cout << "=== Table I: example permutations in BPC(n) ===\n"
              << "(paper notation (A_{n-1}, ..., A_0); shown for "
                 "n = 4 and n = 6; 'routes' = realized by the\n"
              << "self-routing B(n), expected yes for every row by "
                 "Theorem 2)\n\n";

    for (unsigned n : {4u, 6u}) {
        const SelfRoutingBenes net(n);
        TextTable table({"Permutation", "A vector (n=" +
                                            std::to_string(n) + ")",
                         "D for n=" + std::to_string(n), "routes"});
        for (const auto &row : named::tableOne(n)) {
            const Permutation d = row.spec.toPermutation();
            table.newRow();
            table.addCell(row.name);
            table.addCell(row.spec.toString());
            table.addCell(n == 4 ? d.toString() : "(64 entries)");
            table.addCell(net.route(d).success ? "yes" : "NO");
        }
        table.print(std::cout);
        std::cout << "\n";
    }
}

void
BM_TableOneRouting(benchmark::State &state)
{
    const unsigned n = 10;
    const SelfRoutingBenes net(n);
    const auto rows = named::tableOne(n);
    for (auto _ : state) {
        for (const auto &row : rows) {
            auto res = net.route(row.spec.toPermutation());
            benchmark::DoNotOptimize(res.success);
        }
    }
    state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_TableOneRouting);

void
BM_BpcExpansion(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const BpcSpec spec = named::bitReversal(n);
    for (auto _ : state) {
        auto d = spec.toPermutation();
        benchmark::DoNotOptimize(d.dest().data());
    }
}
BENCHMARK(BM_BpcExpansion)->Arg(8)->Arg(12)->Arg(16);

} // namespace

int
main(int argc, char **argv)
{
    printTableOne();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
