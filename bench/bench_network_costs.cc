/**
 * @file
 * Experiment E1 -- the Section I cost comparison: binary-switch
 * count and transmission delay (in switch stages) of the
 * self-routing Benes network against the full crossbar, Lawrie's
 * omega network, and Batcher's bitonic sorting network, swept over
 * N. The paper's qualitative claims to verify:
 *
 *  - Benes uses about twice the switches and twice the delay of
 *    omega but realizes a much richer class F;
 *  - Batcher is self-routing for ALL permutations but needs
 *    O(log^2 N) delay and O(N log^2 N) switches;
 *  - the crossbar is trivial to route but costs O(N^2) switches.
 *
 * Timed section: one self-routing pass per fabric at N = 1024.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "networks/network_iface.hh"
#include "perm/named_bpc.hh"

namespace
{

using namespace srbenes;

void
printCosts()
{
    std::cout << "=== E1: fabric cost comparison (Section I) ===\n\n";

    TextTable table({"n", "N", "fabric", "switches", "delay stages",
                     "switches/omega", "delay/omega"});
    for (unsigned n : {3u, 6u, 10u, 14u}) {
        const auto nets = allNetworks(n);
        const double omega_sw =
            static_cast<double>(nets[2]->numSwitches());
        const double omega_delay =
            static_cast<double>(nets[2]->delayStages());
        for (const auto &net : nets) {
            table.newRow();
            table.addCell(n);
            table.addCell(net->numLines());
            table.addCell(net->name());
            table.addCell(net->numSwitches());
            table.addCell(net->delayStages());
            table.addCell(net->numSwitches() / omega_sw, 2);
            table.addCell(net->delayStages() / omega_delay, 2);
        }
    }
    table.print(std::cout);

    std::cout << "\nroutable by self-routing (bit reversal as the "
                 "witness, n = 6):\n";
    TextTable who({"fabric", "bit reversal", "random perm"});
    Prng prng(1);
    const auto rand_perm = Permutation::random(64, prng);
    const auto bitrev = named::bitReversal(6).toPermutation();
    for (const auto &net : allNetworks(6)) {
        who.newRow();
        who.addCell(net->name());
        who.addCell(net->tryRoute(bitrev) ? "yes" : "no");
        who.addCell(net->tryRoute(rand_perm) ? "yes" : "no");
    }
    who.print(std::cout);
    std::cout << "\n";
}

void
BM_FabricRoute(benchmark::State &state)
{
    const unsigned n = 10;
    const auto nets = allNetworks(n);
    const auto &net = *nets[static_cast<std::size_t>(state.range(0))];
    state.SetLabel(net.name());
    const Permutation d = named::bitReversal(n).toPermutation();
    for (auto _ : state) {
        bool ok = net.tryRoute(d);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_FabricRoute)->DenseRange(0, 5);

} // namespace

int
main(int argc, char **argv)
{
    printCosts();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
