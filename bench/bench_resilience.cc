/**
 * @file
 * Resilient-serving throughput: ResilientRouter::route over a hot
 * pattern set with 0, 1, and 2 injected stuck-at faults.
 *
 * Workload: 8 recurring patterns (half F members, half general
 * permutations), served round-robin by Prng draw with an untimed
 * warm prefix. The warm prefix is where the chain pays its one-off
 * costs (the on-failure probe and the degraded-plan search); the
 * timed region then measures steady-state serving, which for a
 * faulty fabric is dominated by epoch-validated degraded-cache hits
 * that are still tag-verified per serve.
 *
 * Every timed serve is checked: a success must be bit-exact against
 * Permutation::applyTo, anything else must be a structured
 * fault_detected / deadline_exceeded failure. A silent misroute
 * exits nonzero — this bench doubles as the acceptance gate for the
 * fallback chain.
 *
 * Emits a fixed-width table (tier breakdown per config) and
 * machine-readable BENCH_resilience.json.
 * SRBENES_BENCH_SMOKE=1 shrinks the sweep for CI.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/prng.hh"
#include "common/table.hh"
#include "core/resilient.hh"
#include "perm/f_class.hh"

namespace
{

using namespace srbenes;

constexpr unsigned kPatterns = 8;

struct Config
{
    unsigned n;
    unsigned faults;
    std::uint64_t requests;
};

struct Row
{
    Config cfg;
    double serves_per_sec = 0;
    ResilientStats stats;
    std::uint64_t exact = 0;      //!< bit-exact successes
    std::uint64_t structured = 0; //!< honest structured failures
    std::uint64_t silent = 0;     //!< wrong payloads (must be 0)
};

/** The injected fault menu: first an opening-stage stuck-crossed
 *  switch, then additionally a center-stage stuck-straight one.
 *  Two simultaneous faults break the single-fault diagnosis model
 *  (suspects come back empty), so serving them leans entirely on
 *  the reseeded decomposition search; the center stage leaves that
 *  search the most freedom, which makes the 2-fault row measure
 *  degraded THROUGHPUT rather than fail-fast latency. */
std::vector<StuckFault>
faultMenu(const BenesTopology &topo, unsigned count)
{
    std::vector<StuckFault> faults;
    if (count >= 1)
        faults.push_back(StuckFault{0, 1, 1});
    if (count >= 2)
        faults.push_back(StuckFault{topo.numStages() / 2,
                                    topo.switchesPerStage() - 1, 0});
    return faults;
}

Row
run(const Config &cfg)
{
    ResilientOptions opts;
    opts.metrics = nullptr; // stats() is the scoreboard here
    ResilientRouter rr(cfg.n, opts);
    for (const StuckFault &f :
         faultMenu(rr.fabric().topology(), cfg.faults))
        rr.injectFault(f);

    const Word N = Word{1} << cfg.n;
    Prng prng(90 + cfg.faults);
    std::vector<Permutation> patterns;
    std::vector<std::vector<Word>> expected;
    std::vector<Word> payload(N);
    for (Word i = 0; i < N; ++i)
        payload[i] = i * 3 + 1;
    for (unsigned i = 0; i < kPatterns; ++i) {
        patterns.push_back(i % 2 == 0
                               ? randomFMember(cfg.n, prng)
                               : Permutation::random(N, prng));
        expected.push_back(patterns.back().applyTo(payload));
    }

    // Warm prefix: probes fire, degraded plans get found and cached.
    for (unsigned i = 0; i < 2 * kPatterns; ++i)
        (void)rr.route(patterns[i % kPatterns], payload);

    Row row;
    row.cfg = cfg;
    Prng choose(17);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < cfg.requests; ++r) {
        const std::size_t pi = choose.below(kPatterns);
        const RouteOutcome out = rr.route(patterns[pi], payload);
        if (out.ok()) {
            if (out.value() == expected[pi])
                ++row.exact;
            else
                ++row.silent;
        } else {
            ++row.structured;
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration<double>(t1 - t0).count();
    row.serves_per_sec = cfg.requests / sec;
    row.stats = rr.stats();
    return row;
}

std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

std::string
pct(std::uint64_t part, std::uint64_t whole)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%",
                  whole ? 100.0 * part / whole : 0.0);
    return buf;
}

} // namespace

int
main()
{
    // SRBENES_BENCH_SMOKE=1: the CI smoke configuration — the same
    // sweep shape at a fraction of the request count.
    const char *smoke_env = std::getenv("SRBENES_BENCH_SMOKE");
    const bool smoke = smoke_env && smoke_env[0] != '\0' &&
                       !(smoke_env[0] == '0' && smoke_env[1] == '\0');

    std::vector<Config> configs;
    const unsigned n = 6;
    const std::uint64_t requests = smoke ? 500 : 20000;
    for (unsigned faults = 0; faults <= 2; ++faults)
        configs.push_back(Config{n, faults, requests});

    std::cout << "=== resilient serving: throughput vs injected "
                 "faults (n = "
              << n << ") ===\n\n";

    TextTable table({"faults", "requests", "serves/s", "primary",
                     "reroute", "two-pass", "failed", "probes",
                     "cache hits"});
    std::vector<Row> rows;
    for (const Config &cfg : configs) {
        Row row = run(cfg);
        // Tier percentages are over ALL serves the router saw,
        // including the untimed warm prefix (stats() is monotonic).
        const std::uint64_t serves =
            row.stats.serves_primary + row.stats.serves_reroute +
            row.stats.serves_two_pass + row.stats.failures_fault +
            row.stats.failures_deadline;
        table.newRow();
        table.addCell(cfg.faults);
        table.addCell(cfg.requests);
        table.addCell(fmt(row.serves_per_sec));
        table.addCell(pct(row.stats.serves_primary, serves));
        table.addCell(pct(row.stats.serves_reroute, serves));
        table.addCell(pct(row.stats.serves_two_pass, serves));
        table.addCell(row.stats.failures_fault +
                      row.stats.failures_deadline);
        table.addCell(row.stats.probes);
        table.addCell(row.stats.degraded_cache_hits);
        if (row.silent)
            std::fprintf(stderr,
                         "SILENT MISROUTE: %llu wrong payloads with "
                         "%u faults\n",
                         static_cast<unsigned long long>(row.silent),
                         cfg.faults);
        rows.push_back(row);
    }
    table.print(std::cout);

    const char *path = "BENCH_resilience.json";
    std::FILE *jf = std::fopen(path, "w");
    if (!jf) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    std::fprintf(jf,
                 "{\n  \"benchmark\": \"resilience\",\n"
                 "  \"unit\": \"serves_per_sec\",\n"
                 "  \"workload\": \"%u-pattern hot set, half F "
                 "members, warm degraded cache\",\n"
                 "  \"n\": %u,\n  \"results\": [\n",
                 kPatterns, n);
    bool ok = true;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        const ResilientStats &st = r.stats;
        ok = ok && r.silent == 0;
        std::fprintf(
            jf,
            "    {\"faults\": %u, \"requests\": %llu, "
            "\"serves_per_sec\": %.0f, \"primary\": %llu, "
            "\"reroute\": %llu, \"two_pass\": %llu, "
            "\"failed_fault\": %llu, \"failed_deadline\": %llu, "
            "\"probes\": %llu, \"retries\": %llu, "
            "\"degraded_cache_hits\": %llu, "
            "\"silent_misroutes\": %llu}%s\n",
            r.cfg.faults,
            static_cast<unsigned long long>(r.cfg.requests),
            r.serves_per_sec,
            static_cast<unsigned long long>(st.serves_primary),
            static_cast<unsigned long long>(st.serves_reroute),
            static_cast<unsigned long long>(st.serves_two_pass),
            static_cast<unsigned long long>(st.failures_fault),
            static_cast<unsigned long long>(st.failures_deadline),
            static_cast<unsigned long long>(st.probes),
            static_cast<unsigned long long>(st.retries),
            static_cast<unsigned long long>(st.degraded_cache_hits),
            static_cast<unsigned long long>(r.silent),
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(jf, "  ]\n}\n");
    std::fclose(jf);
    std::printf("\nwrote %s\n", path);
    return ok ? 0 : 1;
}
