/**
 * @file
 * Experiment E2 -- the setup-time claim of Section I: self-routing
 * determines all switch states in O(log N) (during transmission,
 * with no preprocessing), while the best serial setup for an
 * arbitrary permutation (Waksman's looping algorithm) costs
 * O(N log N) before the first bit moves.
 *
 * The wall-clock table measures a software simulation, so both
 * columns scale with the N log N switch count the simulator must
 * touch; the claim that survives simulation is the RATIO: the
 * Waksman path pays a full extra setup pass on top of transmission,
 * and its advantage disappears entirely in the fabric's O(log N)
 * hardware depth (the "delay stages" column).
 *
 * Timed sections: BM_SelfRoute vs BM_WaksmanSetupAndRoute vs
 * BM_WaksmanSetupOnly across n.
 *
 * Section E2b extends the experiment to the library's own cold-plan
 * path: the per-switch reference simulator against the bit-sliced
 * SetupEngine (scalar and SIMD kernel dispatch, plus Router::plan
 * end to end), and the batch sweep (1/8/64/256 at n = 12 and 14)
 * comparing the tiled-arena pipeline against flat setupMany, with
 * per-row working-set and arena accounting. Emits machine-readable
 * BENCH_setup.json; SRBENES_BENCH_SMOKE=1 runs the reduced CI
 * configuration.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "core/fast_engine.hh"
#include "core/fast_kernels.hh"
#include "core/router.hh"
#include "core/self_routing.hh"
#include "core/setup_engine.hh"
#include "core/waksman.hh"
#include "perm/bpc.hh"
#include "perm/f_class.hh"

namespace
{

using namespace srbenes;

double
timeUs(const std::function<void()> &fn, int reps)
{
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        fn();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(stop - start)
               .count() /
           reps;
}

void
printSetupComparison(unsigned max_n)
{
    std::cout << "=== E2: setup cost, self-routing vs external "
                 "(Section I) ===\n\n";

    TextTable table({"n", "N", "delay stages", "self-route us",
                     "waksman setup us", "setup+route us",
                     "setup overhead"});
    for (unsigned n = 6; n <= max_n; n += 2) {
        const SelfRoutingBenes net(n);
        Prng prng(n);
        const Permutation in_f =
            BpcSpec::random(n, prng).toPermutation();
        const Permutation arbitrary =
            Permutation::random(std::size_t{1} << n, prng);

        const int reps = n <= 12 ? 50 : 5;
        const double self_us = timeUs(
            [&] {
                auto res = net.route(in_f);
                benchmark::DoNotOptimize(res.success);
            },
            reps);
        const double setup_us = timeUs(
            [&] {
                auto states = waksmanSetup(net.topology(), arbitrary);
                benchmark::DoNotOptimize(states.size());
            },
            reps);
        const double both_us = timeUs(
            [&] {
                auto states = waksmanSetup(net.topology(), arbitrary);
                auto res = net.routeWithStates(arbitrary, states);
                benchmark::DoNotOptimize(res.success);
            },
            reps);

        table.newRow();
        table.addCell(n);
        table.addCell(Word{1} << n);
        table.addCell(net.topology().numStages());
        table.addCell(self_us, 1);
        table.addCell(setup_us, 1);
        table.addCell(both_us, 1);
        table.addCell(both_us / self_us, 2);
    }
    table.print(std::cout);
    std::cout << "\n(expected shape: 'setup overhead' stays > 1 -- "
                 "the external path always pays an additional\n"
                 "O(N log N) pass; in hardware the self-routing "
                 "delay is the 2 lg N - 1 stage column only)\n\n";
}

struct SetupRow
{
    unsigned n;
    Word N;
    double reference_us; //!< per-switch reference simulator
    double scalar_us;    //!< SetupEngine, scalar kernels forced
    double simd_us;      //!< SetupEngine, dispatched kernels
    double router_us;    //!< Router::plan end to end (uncached)
};

struct BatchRow
{
    unsigned n;
    unsigned batch;
    double perms_per_sec;        //!< tiled pipeline
    double us_per_perm;          //!< tiled pipeline (the headline)
    double legacy_us_per_perm;   //!< setupMany FastPlan path
    std::size_t working_set_bytes;        //!< tiled plan bytes/rep
    std::size_t legacy_working_set_bytes; //!< FastPlan bytes/rep
    std::size_t arena_resident_bytes;
    std::size_t arena_capacity_bytes;
    double arena_occupancy;
};

/**
 * E2b: the library's own cold-plan path. Every sample is cold — a
 * pool of distinct F members is cycled so no plan is ever repeated
 * back-to-back — and the contract is identical on both sides: plan
 * plus physical-order PackedStates for one permutation.
 */
void
runBitslicedSetup(bool smoke, std::vector<SetupRow> &rows,
                  std::vector<BatchRow> &batches)
{
    std::cout << "=== E2b: cold-plan production, per-switch "
                 "reference vs bit-sliced SetupEngine ===\n\n";

    TextTable table({"n", "N", "reference us", "sliced scalar us",
                     "sliced simd us", "router.plan us", "speedup"});
    const int reps = smoke ? 10 : 100;
    for (unsigned n = 8; n <= 12; n += 2) {
        const Word N = Word{1} << n;
        const SelfRoutingBenes net(n);
        const FastEngine eng(n);
        const SetupEngine setup(eng, nullptr);
        const Router router(n, false, /*plan_cache_capacity=*/0,
                            /*cache_shards=*/1, /*metrics=*/nullptr);
        Prng prng(100 + n);
        std::vector<Permutation> pool;
        for (int i = 0; i < 32; ++i)
            pool.push_back(randomFMember(n, prng));
        std::size_t k = 0;
        auto next = [&]() -> const Permutation & {
            return pool[k++ % pool.size()];
        };

        const double ref_us = timeUs(
            [&] {
                auto res = net.route(next());
                benchmark::DoNotOptimize(res.success);
            },
            reps);
        setSimdLevel(SimdLevel::Scalar);
        const double scalar_us = timeUs(
            [&] {
                auto res = setup.setupPacked(next());
                benchmark::DoNotOptimize(res.plan.success);
            },
            reps);
        setSimdLevel(detectSimdLevel());
        const double simd_us = timeUs(
            [&] {
                auto res = setup.setupPacked(next());
                benchmark::DoNotOptimize(res.plan.success);
            },
            reps);
        const double router_us = timeUs(
            [&] {
                auto plan = router.plan(next());
                benchmark::DoNotOptimize(plan.fast);
            },
            reps);

        rows.push_back(
            {n, N, ref_us, scalar_us, simd_us, router_us});
        table.newRow();
        table.addCell(n);
        table.addCell(N);
        table.addCell(ref_us, 1);
        table.addCell(scalar_us, 1);
        table.addCell(simd_us, 1);
        table.addCell(router_us, 1);
        table.addCell(ref_us / simd_us, 2);
    }
    table.print(std::cout);
    std::cout << "\n(every sample is a cold plan; 'speedup' is the "
                 "reference simulator over the fused\n bit-sliced "
                 "setupPacked — the acceptance floor at n = 12 is "
                 "3x)\n\n";

    std::cout << "=== E2b: batch setup, tiled arena pipeline vs "
                 "flat setupMany (F members) ===\n\n";
    for (const unsigned n : {12u, 14u}) {
        const Word N = Word{1} << n;
        const FastEngine eng(n);
        const SetupEngine setup(eng, nullptr);
        Prng prng(2015 + n);
        TextTable btab({"n", "batch", "tiled us/perm",
                        "flat us/perm", "tiled ws KiB",
                        "flat ws KiB", "arena occ"});
        for (unsigned B : {1u, 8u, 64u, 256u}) {
            std::vector<Permutation> batch;
            for (unsigned i = 0; i < B; ++i)
                batch.push_back(randomFMember(n, prng));
            const int breps = std::max(
                2, (smoke ? 64 : 256) / static_cast<int>(B));

            // The tiled path: succinct stage-major plans in a
            // PlanArena, no per-plan FastPlan materialization. The
            // arena persists across reps (blocks recycle through
            // its free lists), the cache-steady state a server has.
            // One untimed rep first so tile allocation and page
            // faults land outside the measurement at every B alike.
            auto arena = std::make_shared<PlanArena>();
            {
                auto warm = setup.setupTiled(
                    batch, RoutingMode::SelfRouting, 1, arena);
                benchmark::DoNotOptimize(warm.size());
            }
            const double tiled_us = timeUs(
                [&] {
                    auto plans = setup.setupTiled(
                        batch, RoutingMode::SelfRouting, 1, arena);
                    benchmark::DoNotOptimize(plans.size());
                },
                breps);

            // The flat path this PR's tiling fixes: one full
            // FastPlan (slot-order ctrl + dest/src tables) per perm.
            {
                auto warm = setup.setupMany(batch);
                benchmark::DoNotOptimize(warm.size());
            }
            const double flat_us = timeUs(
                [&] {
                    auto plans = setup.setupMany(batch);
                    benchmark::DoNotOptimize(plans.size());
                },
                breps);

            // Working sets: bytes of plan state one rep writes.
            const TiledPlans probe = setup.setupTiled(
                batch, RoutingMode::SelfRouting, 1, arena);
            const std::size_t tiled_ws = probe.planBytes();
            const PlanArenaStats astats = probe.arenaStats();
            const std::size_t flat_ws =
                std::size_t{B} *
                ((Word{2 * n - 1} * eng.laneWords() + 2 * N) *
                 sizeof(Word));

            const double tpps = B / (tiled_us * 1e-6);
            batches.push_back({n, B, tpps, tiled_us / B,
                               flat_us / B, tiled_ws, flat_ws,
                               astats.resident_bytes,
                               astats.capacity_bytes,
                               astats.occupancy});
            btab.newRow();
            btab.addCell(n);
            btab.addCell(B);
            btab.addCell(tiled_us / B, 1);
            btab.addCell(flat_us / B, 1);
            btab.addCell(tiled_ws / 1024.0, 0);
            btab.addCell(flat_ws / 1024.0, 0);
            btab.addCell(astats.occupancy, 2);
        }
        btab.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "(the tiled column is the fused-pipeline batch "
                 "path; its us/perm must stay flat across batch\n"
                 "sizes — the CI smoke gate asserts n = 12 "
                 "batch-64 <= 1.25x batch-8)\n\n";
}

bool
writeSetupJson(const std::vector<SetupRow> &rows,
               const std::vector<BatchRow> &batches)
{
    const char *path = "BENCH_setup.json";
    std::FILE *jf = std::fopen(path, "w");
    if (!jf) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return false;
    }
    std::fprintf(jf,
                 "{\n  \"benchmark\": \"setup\",\n"
                 "  \"unit\": \"us_per_cold_plan\",\n"
                 "  \"workload\": \"random F(n) members, fused plan "
                 "+ packed states, 32-perm cold pool\",\n"
                 "  \"simd\": \"%s\",\n  \"results\": [\n",
                 activeKernels().name);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SetupRow &r = rows[i];
        std::fprintf(
            jf,
            "    {\"n\": %u, \"N\": %llu, "
            "\"reference_route_us\": %.1f, "
            "\"bitsliced_scalar_us\": %.1f, "
            "\"bitsliced_simd_us\": %.1f, "
            "\"router_plan_cold_us\": %.1f, "
            "\"speedup_vs_reference\": %.2f}%s\n",
            r.n, static_cast<unsigned long long>(r.N),
            r.reference_us, r.scalar_us, r.simd_us, r.router_us,
            r.reference_us / r.simd_us,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(jf, "  ],\n  \"batch\": [\n");
    for (std::size_t i = 0; i < batches.size(); ++i) {
        const BatchRow &b = batches[i];
        std::fprintf(
            jf,
            "    {\"n\": %u, \"batch\": %u, "
            "\"perms_per_sec\": %.0f, "
            "\"us_per_perm\": %.1f, "
            "\"legacy_us_per_perm\": %.1f, "
            "\"working_set_bytes\": %zu, "
            "\"legacy_working_set_bytes\": %zu, "
            "\"arena_resident_bytes\": %zu, "
            "\"arena_capacity_bytes\": %zu, "
            "\"arena_occupancy\": %.2f}%s\n",
            b.n, b.batch, b.perms_per_sec, b.us_per_perm,
            b.legacy_us_per_perm, b.working_set_bytes,
            b.legacy_working_set_bytes, b.arena_resident_bytes,
            b.arena_capacity_bytes, b.arena_occupancy,
            i + 1 < batches.size() ? "," : "");
    }
    std::fprintf(jf, "  ]\n}\n");
    std::fclose(jf);
    std::printf("wrote %s\n\n", path);
    return true;
}

void
BM_SelfRoute(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const SelfRoutingBenes net(n);
    Prng prng(n);
    const Permutation d = BpcSpec::random(n, prng).toPermutation();
    for (auto _ : state) {
        auto res = net.route(d);
        benchmark::DoNotOptimize(res.success);
    }
    state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_SelfRoute)->DenseRange(6, 16, 2);

void
BM_WaksmanSetupOnly(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const BenesTopology topo(n);
    Prng prng(n);
    const Permutation d =
        Permutation::random(std::size_t{1} << n, prng);
    for (auto _ : state) {
        auto states = waksmanSetup(topo, d);
        benchmark::DoNotOptimize(states.size());
    }
    state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_WaksmanSetupOnly)->DenseRange(6, 16, 2);

void
BM_WaksmanSetupAndRoute(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const SelfRoutingBenes net(n);
    Prng prng(n);
    const Permutation d =
        Permutation::random(std::size_t{1} << n, prng);
    for (auto _ : state) {
        auto states = waksmanSetup(net.topology(), d);
        auto res = net.routeWithStates(d, states);
        benchmark::DoNotOptimize(res.success);
    }
    state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_WaksmanSetupAndRoute)->DenseRange(6, 16, 2);

} // namespace

int
main(int argc, char **argv)
{
    // SRBENES_BENCH_SMOKE=1: the CI smoke configuration — the same
    // sections at reduced reps and range, proving the binary and its
    // JSON stay healthy without tying up a runner.
    const char *smoke_env = std::getenv("SRBENES_BENCH_SMOKE");
    const bool smoke = smoke_env && smoke_env[0] != '\0' &&
                       !(smoke_env[0] == '0' && smoke_env[1] == '\0');

    std::vector<SetupRow> rows;
    std::vector<BatchRow> batches;
    runBitslicedSetup(smoke, rows, batches);
    if (!writeSetupJson(rows, batches))
        return 1;

    printSetupComparison(smoke ? 10u : 16u);
    if (!smoke) {
        benchmark::Initialize(&argc, argv);
        benchmark::RunSpecifiedBenchmarks();
    }
    return 0;
}
