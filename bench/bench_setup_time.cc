/**
 * @file
 * Experiment E2 -- the setup-time claim of Section I: self-routing
 * determines all switch states in O(log N) (during transmission,
 * with no preprocessing), while the best serial setup for an
 * arbitrary permutation (Waksman's looping algorithm) costs
 * O(N log N) before the first bit moves.
 *
 * The wall-clock table measures a software simulation, so both
 * columns scale with the N log N switch count the simulator must
 * touch; the claim that survives simulation is the RATIO: the
 * Waksman path pays a full extra setup pass on top of transmission,
 * and its advantage disappears entirely in the fabric's O(log N)
 * hardware depth (the "delay stages" column).
 *
 * Timed sections: BM_SelfRoute vs BM_WaksmanSetupAndRoute vs
 * BM_WaksmanSetupOnly across n.
 */

#include <chrono>
#include <functional>
#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "core/self_routing.hh"
#include "core/waksman.hh"
#include "perm/bpc.hh"

namespace
{

using namespace srbenes;

double
timeUs(const std::function<void()> &fn, int reps)
{
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        fn();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(stop - start)
               .count() /
           reps;
}

void
printSetupComparison()
{
    std::cout << "=== E2: setup cost, self-routing vs external "
                 "(Section I) ===\n\n";

    TextTable table({"n", "N", "delay stages", "self-route us",
                     "waksman setup us", "setup+route us",
                     "setup overhead"});
    for (unsigned n = 6; n <= 16; n += 2) {
        const SelfRoutingBenes net(n);
        Prng prng(n);
        const Permutation in_f =
            BpcSpec::random(n, prng).toPermutation();
        const Permutation arbitrary =
            Permutation::random(std::size_t{1} << n, prng);

        const int reps = n <= 12 ? 50 : 5;
        const double self_us = timeUs(
            [&] {
                auto res = net.route(in_f);
                benchmark::DoNotOptimize(res.success);
            },
            reps);
        const double setup_us = timeUs(
            [&] {
                auto states = waksmanSetup(net.topology(), arbitrary);
                benchmark::DoNotOptimize(states.size());
            },
            reps);
        const double both_us = timeUs(
            [&] {
                auto states = waksmanSetup(net.topology(), arbitrary);
                auto res = net.routeWithStates(arbitrary, states);
                benchmark::DoNotOptimize(res.success);
            },
            reps);

        table.newRow();
        table.addCell(n);
        table.addCell(Word{1} << n);
        table.addCell(net.topology().numStages());
        table.addCell(self_us, 1);
        table.addCell(setup_us, 1);
        table.addCell(both_us, 1);
        table.addCell(both_us / self_us, 2);
    }
    table.print(std::cout);
    std::cout << "\n(expected shape: 'setup overhead' stays > 1 -- "
                 "the external path always pays an additional\n"
                 "O(N log N) pass; in hardware the self-routing "
                 "delay is the 2 lg N - 1 stage column only)\n\n";
}

void
BM_SelfRoute(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const SelfRoutingBenes net(n);
    Prng prng(n);
    const Permutation d = BpcSpec::random(n, prng).toPermutation();
    for (auto _ : state) {
        auto res = net.route(d);
        benchmark::DoNotOptimize(res.success);
    }
    state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_SelfRoute)->DenseRange(6, 16, 2);

void
BM_WaksmanSetupOnly(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const BenesTopology topo(n);
    Prng prng(n);
    const Permutation d =
        Permutation::random(std::size_t{1} << n, prng);
    for (auto _ : state) {
        auto states = waksmanSetup(topo, d);
        benchmark::DoNotOptimize(states.size());
    }
    state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_WaksmanSetupOnly)->DenseRange(6, 16, 2);

void
BM_WaksmanSetupAndRoute(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const SelfRoutingBenes net(n);
    Prng prng(n);
    const Permutation d =
        Permutation::random(std::size_t{1} << n, prng);
    for (auto _ : state) {
        auto states = waksmanSetup(net.topology(), d);
        auto res = net.routeWithStates(d, states);
        benchmark::DoNotOptimize(res.success);
    }
    state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_WaksmanSetupAndRoute)->DenseRange(6, 16, 2);

} // namespace

int
main(int argc, char **argv)
{
    printSetupComparison();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
