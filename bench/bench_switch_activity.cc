/**
 * @file
 * Experiment E12 (extension) -- switch-activity ablation: how much
 * of the fabric each permutation family actually exercises. The
 * idle stages explain exactly where the Section III schedule
 * shortcuts come from (a stage whose switches stay straight is an
 * iteration the SIMD simulation may skip), and the per-stage
 * utilization profiles separate the families structurally.
 *
 * Timed section: instrumentation overhead on a routed state array.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "common/table.hh"
#include "core/self_routing.hh"
#include "core/stats.hh"
#include "core/waksman.hh"
#include "perm/f_class.hh"
#include "perm/linear.hh"
#include "perm/named_bpc.hh"
#include "perm/omega_class.hh"

namespace
{

using namespace srbenes;

std::string
profileString(const std::vector<double> &util)
{
    std::string s;
    for (double u : util) {
        if (!s.empty())
            s += " ";
        s += std::to_string(static_cast<int>(u * 100));
    }
    return s;
}

void
printActivity()
{
    std::cout << "=== E12: switch activity by permutation family "
                 "(B(6), 64 lines) ===\n\n";

    const unsigned n = 6;
    const SelfRoutingBenes net(n);
    Prng prng(4);

    struct Row
    {
        std::string name;
        Permutation perm;
        RoutingMode mode;
    };
    const std::vector<Row> rows{
        {"identity", Permutation::identity(64),
         RoutingMode::SelfRouting},
        {"bit reversal", named::bitReversal(n).toPermutation(),
         RoutingMode::SelfRouting},
        {"vector reversal",
         named::vectorReversal(n).toPermutation(),
         RoutingMode::SelfRouting},
        {"matrix transpose",
         named::matrixTranspose(n).toPermutation(),
         RoutingMode::SelfRouting},
        {"perfect shuffle",
         named::perfectShuffle(n).toPermutation(),
         RoutingMode::SelfRouting},
        {"cyclic shift +1", named::cyclicShift(n, 1),
         RoutingMode::SelfRouting},
        {"cyclic shift +1 (omega bit)", named::cyclicShift(n, 1),
         RoutingMode::OmegaBit},
        {"gray code", LinearSpec::grayCode(n).toPermutation(),
         RoutingMode::SelfRouting},
        {"random F member", randomFMember(n, prng),
         RoutingMode::SelfRouting},
    };

    TextTable table({"permutation", "crossed %",
                     "idle stages", "per-stage crossed %"});
    for (const auto &row : rows) {
        const auto res = net.route(row.perm, row.mode);
        table.newRow();
        table.addCell(row.name);
        table.addCell(100.0 * crossedFraction(res.states), 1);
        table.addCell(
            static_cast<std::uint64_t>(idleStages(res.states).size()));
        table.addCell(profileString(stageUtilization(res.states)));
    }
    table.print(std::cout);

    // Self-routing vs Waksman realizations of the same F member.
    const Permutation member = randomFMember(n, prng);
    const auto self_states = net.route(member).states;
    const auto wak_states = waksmanSetup(net.topology(), member);
    std::cout << "\nself vs Waksman realization of one F member: "
              << statesHammingDistance(self_states, wak_states)
              << " / " << net.topology().numSwitches()
              << " switches differ (the Benes decomposition is not "
                 "unique)\n\n";
}

void
BM_Instrumentation(benchmark::State &state)
{
    const unsigned n = 10;
    const SelfRoutingBenes net(n);
    Prng prng(1);
    const auto res = net.route(randomFMember(n, prng));
    for (auto _ : state) {
        auto util = stageUtilization(res.states);
        benchmark::DoNotOptimize(util.data());
    }
}
BENCHMARK(BM_Instrumentation);

} // namespace

int
main(int argc, char **argv)
{
    printActivity();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
